"""The built-in rule set, grounded in the IR's dependence machinery.

Rule catalog (see ``docs/STATIC_ANALYSIS.md`` for examples):

==========  ===========  ============================================
ID          default      checks
==========  ===========  ============================================
STRUCT001   error        structural validity (folded from
                         :mod:`repro.ir.validate`)
BND002      error        affine subscripts stay inside declared
                         array extents at the loop bounds
RACE001     error        loops marked parallel must not carry
                         non-reduction data dependences
VEC003      warning      innermost-loop vectorization legality,
                         with aliasing / reassociation caveats
INIT004     warning      an element must not be read before the
                         statement that writes it in the same body
RED005      error        reduction-style updates in parallel loops
                         need annotation; FP reductions reassociate
OPT010      warning      a legal loop interchange beats the written
                         loop order on the stride cost model (the
                         paper's ``2mm``/``3mm`` Figure 1 anomaly)
==========  ===========  ============================================

Every rule is conservative in the same direction as the dependence
tests it builds on: inconclusive analysis downgrades a finding to a
*possible* problem (WARNING) rather than suppressing it.

The rules consume the fixpoint dataflow facts of
:mod:`repro.staticanalysis.dataflow` (via ``ctx.facts(kernel)``)
instead of walking the IR themselves: one facts computation feeds all
seven rules plus the cross-compiler divergence analyzer.
"""

from __future__ import annotations

from repro.ir.kernel import Feature, Kernel
from repro.ir.types import AccessKind
from repro.staticanalysis.dataflow import MAX_PERMUTATION_DEPTH, NestFacts
from repro.staticanalysis.diagnostics import Category, Diagnostic, Severity
from repro.staticanalysis.registry import rule

#: Interchange findings require at least this stride-cost improvement
#: (2x fewer cache lines per innermost iteration) — small reorder wins
#: are within the noise of the cost model.
INTERCHANGE_GAIN_THRESHOLD = 2.0

#: Kept as the historical name; the search bound now lives with the
#: interchange summary in :mod:`repro.staticanalysis.dataflow`.
_MAX_PERMUTATION_DEPTH = MAX_PERMUTATION_DEPTH


# --------------------------------------------------------------------------
# STRUCT001 / BND002 — folded from repro.ir.validate
# --------------------------------------------------------------------------


@rule(
    "STRUCT001",
    title="kernel is structurally malformed",
    category=Category.STRUCTURE,
    severity=Severity.ERROR,
    help_text="Cross-cutting structural checks: arrays must be declared "
    "with one consistent signature across nests, and reduction "
    "annotations must name loops of their nest.",
)
def structural_validity(kernel: Kernel, ctx) -> "list[Diagnostic]":
    return [d for d in ctx.validated(kernel) if d.rule_id == "STRUCT001"]


@rule(
    "BND002",
    title="subscript exceeds the declared array extent",
    category=Category.CORRECTNESS,
    severity=Severity.ERROR,
    help_text="Evaluates every affine subscript over the nest's loop "
    "bounds; any dimension whose reachable range leaves "
    "[0, extent) is an out-of-bounds access.",
)
def out_of_bounds_subscript(kernel: Kernel, ctx) -> "list[Diagnostic]":
    return [d for d in ctx.validated(kernel) if d.rule_id == "BND002"]


# --------------------------------------------------------------------------
# RACE001 — parallel-loop data races
# --------------------------------------------------------------------------


@rule(
    "RACE001",
    title="parallel loop carries a data dependence",
    category=Category.CORRECTNESS,
    severity=Severity.ERROR,
    help_text="A loop marked parallel must not carry a loop-carried "
    "dependence: iterations would race on the shared array. "
    "Recognized reductions are exempt (see RED005); kernels "
    "using atomics are reported as notes.",
)
def parallel_loop_race(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    atomics = kernel.has_feature(Feature.ATOMICS)
    for facts in ctx.facts(kernel).nests:
        if not facts.parallel_levels:
            continue
        nest = facts.nest
        seen: set[tuple] = set()
        for level in facts.parallel_levels:
            loop = nest.loops[level]
            for dep in facts.carried[level]:
                if dep.is_reduction:
                    continue
                # Only a proven distance at this level is a provable
                # race; loose directions (MIV fallback, weak SIV) and
                # ANY (indirect subscripts) are may-dependences.
                definite = dep.distances[level] is not None
                key = (level, dep.array, dep.src.name, dep.dst.name, dep.kind, definite)
                if key in seen:
                    continue
                seen.add(key)
                if atomics:
                    severity = Severity.NOTE
                    suffix = " (kernel uses atomics; assuming synchronized)"
                elif definite:
                    severity = Severity.ERROR
                    suffix = ""
                else:
                    severity = Severity.WARNING
                    suffix = " (dependence test inconclusive; possible race)"
                out.append(
                    Diagnostic(
                        rule_id="RACE001",
                        severity=severity,
                        category=Category.CORRECTNESS,
                        message=(
                            f"loop {loop.var!r} is parallel but carries a "
                            f"{dep.kind.value} dependence on {dep.array!r} "
                            f"({dep.src.name}->{dep.dst.name}){suffix}"
                        ),
                        kernel=kernel.name,
                        nest=nest.label,
                        statement=dep.src.name,
                        array=dep.array,
                        loop=loop.var,
                        hint="privatize the data, add a reduction annotation, "
                        "or serialize the loop",
                    )
                )
    return out


# --------------------------------------------------------------------------
# VEC003 — innermost vectorization legality
# --------------------------------------------------------------------------


@rule(
    "VEC003",
    title="innermost loop resists vectorization",
    category=Category.PERFORMANCE,
    severity=Severity.WARNING,
    help_text="Wraps the innermost-loop vectorization legality verdict: "
    "carried non-reduction dependences block SIMD outright "
    "(warning); inconclusive aliasing and FP reduction "
    "reassociation are surfaced as notes, since compilers "
    "diverge exactly there (runtime checks, fast-math).",
)
def vectorization_legality(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    for facts in ctx.facts(kernel).nests:
        verdict = facts.vectorization
        inner = facts.innermost_var
        common = dict(kernel=kernel.name, nest=facts.label, loop=inner)
        if not verdict.legal:
            blockers = "; ".join(verdict.blockers)
            out.append(
                Diagnostic(
                    rule_id="VEC003",
                    severity=Severity.WARNING,
                    category=Category.PERFORMANCE,
                    message=(
                        f"innermost loop {inner!r} cannot be vectorized: "
                        f"{blockers}"
                    ),
                    hint="interchange a dependence-free loop inward or "
                    "restructure the recurrence",
                    **common,
                )
            )
            continue
        if verdict.needs_runtime_checks:
            out.append(
                Diagnostic(
                    rule_id="VEC003",
                    severity=Severity.NOTE,
                    category=Category.PERFORMANCE,
                    message=(
                        f"vectorizing loop {inner!r} needs runtime "
                        f"alias/overlap checks (inconclusive dependence "
                        f"tests); compilers may multiversion or stay scalar"
                    ),
                    **common,
                )
            )
        if verdict.needs_reduction_reassociation:
            out.append(
                Diagnostic(
                    rule_id="VEC003",
                    severity=Severity.NOTE,
                    category=Category.PORTABILITY,
                    message=(
                        f"vectorizing loop {inner!r} requires reassociating "
                        f"an FP reduction — legal only under "
                        f"fast-math-style flags"
                    ),
                    **common,
                )
            )
    return out


# --------------------------------------------------------------------------
# INIT004 — read-before-write ordering
# --------------------------------------------------------------------------


@rule(
    "INIT004",
    title="element read before the statement that writes it",
    category=Category.CORRECTNESS,
    severity=Severity.WARNING,
    help_text="Within one loop body, a read of an element that a later "
    "statement (pure-)writes sees the previous iteration's "
    "value — and uninitialized storage on the first iteration. "
    "Usually a statement-ordering mistake.",
)
def read_before_write(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    for facts in ctx.facts(kernel).nests:
        for fact in facts.read_before_write:
            out.append(
                Diagnostic(
                    rule_id="INIT004",
                    severity=Severity.WARNING,
                    category=Category.CORRECTNESS,
                    message=(
                        f"{fact.reader.name} reads {fact.array}[{fact.subscripts}] "
                        f"before {fact.writer.name} writes it — the first "
                        f"iteration reads uninitialized data"
                    ),
                    kernel=kernel.name,
                    nest=facts.label,
                    statement=fact.reader.name,
                    array=fact.array,
                    hint="reorder the statements or initialize "
                    f"{fact.array!r} before the nest",
                )
            )
    return out


# --------------------------------------------------------------------------
# RED005 — reduction misuse under parallelism
# --------------------------------------------------------------------------


@rule(
    "RED005",
    title="reduction misuse in a parallel loop",
    category=Category.CORRECTNESS,
    severity=Severity.ERROR,
    help_text="An update whose target does not move with a parallel loop "
    "is a concurrent read-modify-write: unannotated, that is a "
    "race; annotated as a reduction over the parallel loop, an "
    "FP target still reassociates (non-associative addition), "
    "so results vary with thread count.",
)
def reduction_misuse(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    atomics = kernel.has_feature(Feature.ATOMICS)
    for facts in ctx.facts(kernel).nests:
        if not facts.parallel_levels:
            continue
        nest = facts.nest
        par_loops = [nest.loops[level] for level in facts.parallel_levels]
        for af in facts.accesses:
            acc, stmt = af.access, af.stmt
            if acc.kind is not AccessKind.UPDATE:
                continue
            for loop in par_loops:
                common = dict(
                    kernel=kernel.name,
                    nest=facts.label,
                    statement=stmt.name,
                    array=acc.array.name,
                    loop=loop.var,
                )
                if acc.indirect:
                    if loop.var in af.moves_with:
                        continue
                    out.append(
                        Diagnostic(
                            rule_id="RED005",
                            severity=Severity.NOTE if atomics else Severity.WARNING,
                            category=Category.CORRECTNESS,
                            message=(
                                f"indirect update of {acc.array.name!r} "
                                f"inside parallel loop {loop.var!r} may "
                                f"collide across iterations"
                                + (" (kernel uses atomics)" if atomics else "")
                            ),
                            hint="use atomics or per-thread partial arrays",
                            **common,
                        )
                    )
                    continue
                if loop.var in af.moves_with:
                    continue  # target moves with the loop: no conflict
                if stmt.reduction_over is None or stmt.reduction_over != loop.var:
                    annotated = (
                        f" (annotated as a reduction over "
                        f"{stmt.reduction_over!r}, not {loop.var!r})"
                        if stmt.reduction_over is not None
                        else ""
                    )
                    out.append(
                        Diagnostic(
                            rule_id="RED005",
                            severity=Severity.NOTE if atomics else Severity.ERROR,
                            category=Category.CORRECTNESS,
                            message=(
                                f"{stmt.name} updates {acc.array.name!r} "
                                f"invariantly to parallel loop "
                                f"{loop.var!r} without a matching "
                                f"reduction annotation{annotated}"
                                + (
                                    "; kernel uses atomics"
                                    if atomics
                                    else " — iterations race on the update"
                                )
                            ),
                            hint=f"annotate the statement as a reduction "
                            f"over {loop.var!r} or privatize "
                            f"{acc.array.name!r}",
                            **common,
                        )
                    )
                elif acc.array.dtype.is_float:
                    out.append(
                        Diagnostic(
                            rule_id="RED005",
                            severity=Severity.WARNING,
                            category=Category.PORTABILITY,
                            message=(
                                f"FP reduction on {acc.array.name!r} over "
                                f"parallel loop {loop.var!r} reassociates "
                                f"non-associative additions — results "
                                f"vary with thread count and compiler"
                            ),
                            hint="accept run-to-run FP drift or serialize "
                            "the reduction",
                            **common,
                        )
                    )
    return out


# --------------------------------------------------------------------------
# OPT010 — interchange opportunity (the 2mm/3mm Figure 1 diagnosis)
# --------------------------------------------------------------------------


def best_legal_order(facts: NestFacts) -> "tuple[tuple[str, ...], float] | None":
    """The cheapest legal loop order of a nest, or ``None`` when the
    written order already wins (or nothing is movable)."""
    summary = facts.interchange
    if len(summary.movable) < 2 or summary.cost_original <= 0.0:
        return None
    order, cost = summary.select(
        MAX_PERMUTATION_DEPTH, allow_reduction_reorder=True
    )
    if order == summary.original:
        return None
    return order, cost


@rule(
    "OPT010",
    title="legal loop interchange beats the written order",
    category=Category.PERFORMANCE,
    severity=Severity.WARNING,
    help_text="Scores every legal permutation of the nest on the stride "
    "cost model (expected cache lines per innermost iteration). "
    "When a legal order wins by 2x or more, the kernel depends "
    "on the compiler performing the interchange — exactly the "
    "2mm/3mm anomaly of the paper's Figure 1, where icc "
    "interchanges and fcc does not, for two orders of "
    "magnitude.",
)
def interchange_opportunity(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    for facts in ctx.facts(kernel).nests:
        best = best_legal_order(facts)
        if best is None:
            continue
        best_order, best_cost = best
        cost0 = facts.interchange.cost_original
        if best_cost * INTERCHANGE_GAIN_THRESHOLD > cost0:
            continue
        original = facts.interchange.original
        ratio = cost0 / best_cost if best_cost > 0 else float("inf")
        ratio_txt = "inf" if ratio == float("inf") else f"{ratio:.1f}"
        out.append(
            Diagnostic(
                rule_id="OPT010",
                severity=Severity.WARNING,
                category=Category.PERFORMANCE,
                message=(
                    f"loop order {''.join(original)} touches {ratio_txt}x "
                    f"more cache lines per iteration than the legal order "
                    f"{''.join(best_order)}; performance depends on the "
                    f"compiler interchanging (icc does, fcc does not)"
                ),
                kernel=kernel.name,
                nest=facts.label,
                loop=best_order[-1],
                hint=f"rewrite the nest as {''.join(best_order)} to stop "
                f"depending on the optimizer",
            )
        )
    return out
