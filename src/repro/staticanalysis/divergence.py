"""Cross-compiler divergence analysis: which transformations fire where.

The paper's headline result — a median 16 % win from picking the best
compiler per code, with extremes like the ``2mm``/``3mm`` interchange
fcc misses and Polly's >250,000x on ``mvt`` — is a *static* property:
each kernel's loop nests either meet or miss each compiler's capability
table.  This module replays the compiler models' pass gates (quirks
tables + default flags) against the fixpoint dataflow facts of
:mod:`repro.staticanalysis.dataflow`, without running any pass or cost
model, and emits:

* :func:`predict_transforms` — per (kernel x variant): build/run
  incidents, dead-code elimination, the final loop order (Polly
  rescheduling or plain interchange), tiling, and vectorization, each
  decided by the same gates the passes use;
* the ``DIV0xx`` diagnostics — findings that fire only when the
  variants *diverge* (some transform, some don't), ranked by impact;
* :func:`recommend_compiler` — a per-kernel best-variant prediction
  from a static traffic proxy (stride cost of the predicted final
  order, scaled by the variant's codegen-quality tables and incident
  outcomes), checked against :func:`repro.perf.batch.evaluate_grid`
  as a consistency oracle by :func:`grid_best_variants` and the
  differential test suite.

The predictions intentionally mirror the pass gates exactly (language
windows, interchange depth, the ``1e-12`` cost dead-band, SCoP-ness,
fast-math reassociation); codegen details the gates don't decide
(ISA/lane selection) are assumed available, which holds for every
study variant's paper flag set on A64FX (``-march=native``-style
targeting everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.compilers.registry import STUDY_VARIANTS
from repro.ir.kernel import Feature, Kernel
from repro.ir.types import Language
from repro.staticanalysis.dataflow import KernelFacts, NestFacts, StridePattern
from repro.staticanalysis.diagnostics import Category, Diagnostic, Severity
from repro.staticanalysis.registry import rule

#: Interchange divergence must clear the same stride-cost factor as the
#: OPT010 rule before it is worth a finding (divergence and OPT010 then
#: agree on what counts as "large").
from repro.staticanalysis.rules import INTERCHANGE_GAIN_THRESHOLD

#: Variants the divergence analyzer may reason about (the A64FX five
#: plus the Xeon reference compiler).
ALL_VARIANTS: tuple[str, ...] = STUDY_VARIANTS + ("icc",)

#: The polyhedral pass's dead-band on cost comparisons.
_COST_EPSILON = 1e-12

STATUS_OK = "ok"
STATUS_COMPILE_ERROR = "compile-error"
STATUS_RUNTIME_FAULT = "runtime-fault"


# --------------------------------------------------------------------------
# per-(kernel x variant) transform prediction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NestPrediction:
    """What one compiler variant is predicted to do to one nest."""

    label: str
    original: tuple[str, ...]
    #: Predicted final loop order after rescheduling.
    order: tuple[str, ...]
    #: "" | "interchange" | "polly" — which mechanism moved the loops.
    reordered_by: str
    tiled: bool
    vectorized: bool
    #: Why vectorization is predicted to fail ("" when it succeeds).
    vector_blocker: str
    cost_original: float
    #: Stride cost of the predicted final order.
    cost_final: float

    @property
    def interchanged(self) -> bool:
        return self.order != self.original


@dataclass(frozen=True)
class VariantPrediction:
    """Predicted compilation outcome of one kernel under one variant."""

    variant: str
    status: str
    #: Whole-kernel dead-code elimination (the mvt incident).
    eliminated: bool
    anomaly_multiplier: float
    nests: tuple[NestPrediction, ...]
    #: Variant whose pipeline actually generates the code (Fortran
    #: delegation under the LLVM configurations).
    codegen_variant: str

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _variant_model(variant: str):
    """(caps, default flags) of a study variant, by Figure 2 name."""
    # Late import: the compiler layer lints kernels through this package.
    from repro.compilers.registry import get_compiler

    compiler = get_compiler(variant)
    return compiler.caps, compiler.default_flags()


def _permuted_vectorization(nf: NestFacts, order: tuple[str, ...]):
    """The innermost-vectorization verdict after permuting to ``order``.

    Direction/distance vectors permute with the loops, so the permuted
    nest's verdict is computable from the existing dependence facts —
    no re-analysis of a rebuilt nest."""
    if order == nf.loop_vars:
        return nf.vectorization
    from repro.ir.dependence import innermost_vectorization_legality

    perm = [nf.loop_vars.index(v) for v in order]
    pdeps = tuple(
        replace(
            dep,
            directions=tuple(dep.directions[p] for p in perm),
            distances=tuple(dep.distances[p] for p in perm),
        )
        for dep in nf.deps
    )
    return innermost_vectorization_legality(nf.nest, pdeps)


def _predict_vectorized(
    kernel: Kernel,
    nf: NestFacts,
    caps,
    flags,
    language: Language,
    order: tuple[str, ...],
) -> tuple[bool, str]:
    """Replay the vectorize pass's gates; returns (fires, blocker)."""
    if flags.opt_level < 2:
        return False, "auto-vectorizer off below -O2"
    verdict = _permuted_vectorization(nf, order)
    if not verdict.legal:
        return False, "carried dependence blocks SIMD"
    if verdict.needs_reduction_reassociation:
        if caps.reduction_requires_fastmath and not flags.fast_math:
            return False, "FP reduction needs fast-math to reassociate"
    if verdict.needs_runtime_checks and not caps.runtime_alias_checks:
        return False, "needs runtime alias checks the compiler won't emit"
    if kernel.has_feature(Feature.POINTER_CHASING):
        return False, "dependent-load chain"
    classes = nf.innermost_classes(order)
    has_indirect = any(c is StridePattern.INDIRECT for c in classes)
    has_strided = any(c is StridePattern.STRIDED for c in classes)
    has_predicated = any(s.predicated for s in nf.nest.body)
    has_indirect_write = any(
        af.access.indirect and af.access.kind.writes for af in nf.accesses
    )
    if has_indirect_write:
        return False, "scattered read-modify-write (conflict hazard)"
    if has_indirect and not caps.vectorize_gather:
        return False, "indirect streams need hardware gathers"
    if has_strided and not caps.vectorize_strided:
        return False, "immature SVE codegen on strided streams"
    if has_predicated and not caps.predication:
        return False, "no profitable predication of conditional bodies"
    return True, ""


def _predict_nest(
    kernel: Kernel,
    facts: KernelFacts,
    nf: NestFacts,
    caps,
    flags,
    language: Language,
) -> NestPrediction:
    summary = nf.interchange
    order = summary.original
    by = ""
    polly_active = (
        caps.polyhedral and flags.polly and facts.scop and nf.static_control
    )
    if polly_active and 2 <= len(summary.movable) <= 4:
        candidate, _ = summary.select(
            4, allow_reduction_reorder=flags.fast_math, tie_epsilon=_COST_EPSILON
        )
        if candidate != order:
            order, by = candidate, "polly"
    if (
        not by
        and language in caps.interchange_languages
        and caps.max_interchange_depth >= 2
        and len(summary.movable) >= 2
    ):
        candidate, _ = summary.select(
            caps.max_interchange_depth,
            allow_reduction_reorder=flags.fast_math,
            tie_epsilon=_COST_EPSILON,
        )
        if candidate != order:
            order, by = candidate, "interchange"

    from repro.compilers.passes.polyhedral import _TILING_REUSE_THRESHOLD

    tiled = (
        polly_active and nf.reuse >= _TILING_REUSE_THRESHOLD and nf.nest.depth >= 2
    )
    vectorized, blocker = _predict_vectorized(
        kernel, nf, caps, flags, language, order
    )
    fact = summary.orders.get(order)
    cost_final = fact.cost if fact is not None else summary.cost_original
    return NestPrediction(
        label=nf.label,
        original=summary.original,
        order=order,
        reordered_by=by,
        tiled=tiled,
        vectorized=vectorized,
        vector_blocker=blocker,
        cost_original=summary.cost_original,
        cost_final=cost_final,
    )


def _predict_variant(
    kernel: Kernel, facts: KernelFacts, variant: str
) -> VariantPrediction:
    caps, flags = _variant_model(variant)
    codegen_caps, codegen_flags, codegen_variant = caps, flags, variant

    compile_error = kernel.name in caps.compile_error_kernels
    runtime_fault = kernel.name in caps.runtime_fault_kernels
    if kernel.language is Language.FORTRAN and caps.fortran_delegate:
        codegen_variant = caps.fortran_delegate
        codegen_caps, codegen_flags = _variant_model(codegen_variant)
        compile_error = compile_error or (
            kernel.name in codegen_caps.compile_error_kernels
        )
        runtime_fault = runtime_fault or (
            kernel.name in codegen_caps.runtime_fault_kernels
        )

    multiplier = caps.kernel_multipliers.get(kernel.name, 1.0)
    if flags.polly:
        multiplier *= caps.polly_kernel_multipliers.get(kernel.name, 1.0)

    if compile_error:
        return VariantPrediction(
            variant=variant,
            status=STATUS_COMPILE_ERROR,
            eliminated=False,
            anomaly_multiplier=multiplier,
            nests=(),
            codegen_variant=codegen_variant,
        )

    eliminated = kernel.name in codegen_caps.dce_kernels and facts.scop
    nests = tuple(
        _predict_nest(
            kernel, facts, nf, codegen_caps, codegen_flags, kernel.language
        )
        for nf in facts.nests
    )
    return VariantPrediction(
        variant=variant,
        status=STATUS_RUNTIME_FAULT if runtime_fault else STATUS_OK,
        eliminated=eliminated,
        anomaly_multiplier=multiplier,
        nests=nests,
        codegen_variant=codegen_variant,
    )


def predict_transforms(
    kernel: Kernel, ctx, variants: tuple[str, ...] = STUDY_VARIANTS
) -> Mapping[str, VariantPrediction]:
    """Per-variant transform predictions for one kernel, memoized on
    the :class:`~repro.staticanalysis.driver.AnalysisContext`."""
    memo = ctx._divergence
    key = (id(kernel), variants)
    hit = memo.get(key)
    if hit is not None:
        return hit
    facts = ctx.facts(kernel)
    out = {v: _predict_variant(kernel, facts, v) for v in variants}
    memo[key] = out
    return out


# --------------------------------------------------------------------------
# DIV0xx divergence diagnostics
# --------------------------------------------------------------------------


def _join(names) -> str:
    return ", ".join(names)


def _ok_predictions(preds: Mapping[str, VariantPrediction]):
    return {v: p for v, p in preds.items() if p.ok}


@rule(
    "DIV001",
    title="compilers diverge on loop interchange",
    category=Category.PORTABILITY,
    severity=Severity.WARNING,
    help_text="Replays each variant's interchange/rescheduling gates "
    "(language window, search depth, polyhedral SCoP gate) "
    "against the dataflow facts.  Fires when some variants "
    "reorder the nest to a >=2x cheaper loop order while "
    "others keep the written one — the paper's 2mm/3mm "
    "Figure 1 divergence, statically.",
)
def interchange_divergence(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    preds = _ok_predictions(predict_transforms(kernel, ctx))
    if len(preds) < 2:
        return out
    for i, nf in enumerate(ctx.facts(kernel).nests):
        movers = {
            v: p.nests[i]
            for v, p in preds.items()
            if not p.eliminated and p.nests[i].interchanged
        }
        stayers = [
            v
            for v, p in preds.items()
            if not p.eliminated and not p.nests[i].interchanged
        ]
        if not movers or not stayers:
            continue
        best = min(movers.values(), key=lambda n: n.cost_final)
        if best.cost_final <= 0:
            continue
        ratio = best.cost_original / best.cost_final
        if ratio < INTERCHANGE_GAIN_THRESHOLD:
            continue
        out.append(
            Diagnostic(
                rule_id="DIV001",
                severity=Severity.WARNING,
                category=Category.PORTABILITY,
                message=(
                    f"{_join(stayers)} keep{'s' if len(stayers) == 1 else ''} "
                    f"loop order {''.join(best.original)} while "
                    f"{_join(sorted(movers))} reorder to "
                    f"{''.join(best.order)} ({ratio:.1f}x fewer cache lines "
                    f"per iteration) — the paper's 2mm/3mm interchange "
                    f"divergence"
                ),
                kernel=kernel.name,
                nest=nf.label,
                loop=best.order[-1],
                hint=f"rewrite the nest as {''.join(best.order)}, or pick "
                f"{sorted(movers)[0]} for this kernel",
            )
        )
    return out


@rule(
    "DIV002",
    title="dead-code elimination divergence",
    category=Category.PORTABILITY,
    severity=Severity.WARNING,
    help_text="A variant whose interprocedural optimizer proves the "
    "kernel's computation dead (and deletes it) reports "
    "fantasy speedups — the paper's >250,000x LLVM+Polly mvt "
    "cell.  Fires when the DCE incident table plus the SCoP "
    "gate predict elimination under some variants only.",
)
def dce_divergence(kernel: Kernel, ctx) -> "list[Diagnostic]":
    preds = _ok_predictions(predict_transforms(kernel, ctx))
    eliminators = sorted(v for v, p in preds.items() if p.eliminated)
    survivors = [v for v, p in preds.items() if not p.eliminated]
    if not eliminators or not survivors:
        return []
    return [
        Diagnostic(
            rule_id="DIV002",
            severity=Severity.WARNING,
            category=Category.PORTABILITY,
            message=(
                f"{_join(eliminators)} eliminate"
                f"{'s' if len(eliminators) == 1 else ''} this kernel's "
                f"computation as dead code — its timings measure an empty "
                f"loop (the paper's >250,000x mvt outlier)"
            ),
            kernel=kernel.name,
            hint="make the outputs observable to the timing harness, or "
            "exclude these cells from speedup claims",
        )
    ]


@rule(
    "DIV003",
    title="build/run incident divergence",
    category=Category.PORTABILITY,
    severity=Severity.WARNING,
    help_text="Replays the per-variant incident tables (Figure 2's "
    "compile-error and runtime-fault cells, with Fortran "
    "delegation): the kernel builds and runs under some "
    "variants but not others.",
)
def incident_divergence(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    preds = predict_transforms(kernel, ctx)
    if all(not p.ok for p in preds.values()):
        return out  # no divergence: broken everywhere
    for variant in sorted(preds):
        p = preds[variant]
        if p.status == STATUS_COMPILE_ERROR:
            out.append(
                Diagnostic(
                    rule_id="DIV003",
                    severity=Severity.WARNING,
                    category=Category.PORTABILITY,
                    message=(
                        f"{variant} fails to build this kernel (internal "
                        f"compiler error) — the cell is lost under that "
                        f"toolchain"
                    ),
                    kernel=kernel.name,
                    hint="any other study variant builds it",
                )
            )
        elif p.status == STATUS_RUNTIME_FAULT:
            out.append(
                Diagnostic(
                    rule_id="DIV003",
                    severity=Severity.WARNING,
                    category=Category.PORTABILITY,
                    message=(
                        f"{variant} miscompiles this kernel — the binary "
                        f"faults at runtime"
                    ),
                    kernel=kernel.name,
                    hint="any other study variant runs it correctly",
                )
            )
    return out


@rule(
    "DIV004",
    title="vectorization divergence",
    category=Category.PORTABILITY,
    severity=Severity.NOTE,
    help_text="Replays the vectorizer gates (legality verdict, "
    "fast-math reassociation, gather/strided/predication "
    "capability) per variant on each nest's predicted final "
    "loop order.  Fires when some variants SIMD the loop and "
    "others fall back to scalar code.",
)
def vectorization_divergence(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    preds = _ok_predictions(predict_transforms(kernel, ctx))
    if len(preds) < 2:
        return out
    for i, nf in enumerate(ctx.facts(kernel).nests):
        yes = sorted(
            v for v, p in preds.items() if not p.eliminated and p.nests[i].vectorized
        )
        no = {
            v: p.nests[i].vector_blocker
            for v, p in preds.items()
            if not p.eliminated and not p.nests[i].vectorized
        }
        if not yes or not no:
            continue
        reasons = _join(sorted({blocker for blocker in no.values() if blocker}))
        out.append(
            Diagnostic(
                rule_id="DIV004",
                severity=Severity.NOTE,
                category=Category.PORTABILITY,
                message=(
                    f"innermost loop {nf.innermost_var!r} vectorizes under "
                    f"{_join(yes)} but stays scalar under "
                    f"{_join(sorted(no))}"
                    + (f" ({reasons})" if reasons else "")
                ),
                kernel=kernel.name,
                nest=nf.label,
                loop=nf.innermost_var,
                hint="the scalar variants leave SIMD throughput on the "
                "table for this nest",
            )
        )
    return out


@rule(
    "DIV005",
    title="polyhedral tiling divergence",
    category=Category.PORTABILITY,
    severity=Severity.NOTE,
    help_text="Fires when the polyhedral variant tiles a reuse-rich "
    "SCoP nest (temporal reuse above the tiling threshold) "
    "that every non-polyhedral variant leaves untiled — "
    "cache blocking the programmer would otherwise hand-write.",
)
def tiling_divergence(kernel: Kernel, ctx) -> "list[Diagnostic]":
    out: list[Diagnostic] = []
    preds = _ok_predictions(predict_transforms(kernel, ctx))
    if len(preds) < 2:
        return out
    for i, nf in enumerate(ctx.facts(kernel).nests):
        tilers = sorted(
            v for v, p in preds.items() if not p.eliminated and p.nests[i].tiled
        )
        others = [
            v for v, p in preds.items() if not p.eliminated and not p.nests[i].tiled
        ]
        if not tilers or not others:
            continue
        out.append(
            Diagnostic(
                rule_id="DIV005",
                severity=Severity.NOTE,
                category=Category.PORTABILITY,
                message=(
                    f"{_join(tilers)} tile{'s' if len(tilers) == 1 else ''} "
                    f"this SCoP nest (temporal reuse {nf.reuse:.2f}) — "
                    f"{_join(others)} leave cache blocking to the programmer"
                ),
                kernel=kernel.name,
                nest=nf.label,
                hint="hand-tile the nest to make the locality win portable",
            )
        )
    return out


#: The divergence rule IDs, in registration (and thus emission) order.
DIVERGENCE_RULES: tuple[str, ...] = (
    "DIV001",
    "DIV002",
    "DIV003",
    "DIV004",
    "DIV005",
)

#: Impact order used when ranking divergence findings for reports:
#: losing a cell outright (DCE fantasy numbers, build/run incidents)
#: outranks a missed transform.
_RULE_IMPACT = {
    "DIV002": 0,
    "DIV003": 1,
    "DIV001": 2,
    "DIV005": 3,
    "DIV004": 4,
}


def rank_divergence(diags) -> tuple[Diagnostic, ...]:
    """Divergence findings ranked most-impactful first (stable)."""
    ranked = [d for d in diags if d.rule_id in _RULE_IMPACT]
    return tuple(
        sorted(
            ranked,
            key=lambda d: (_RULE_IMPACT[d.rule_id], -d.severity.rank, d.kernel, d.nest),
        )
    )


# --------------------------------------------------------------------------
# best-compiler recommendation + the evaluate_grid oracle
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Recommendation:
    """Static best-variant prediction for one kernel or benchmark."""

    name: str
    variant: str
    #: Lower-is-faster static proxy score per variant (inf = broken).
    scores: Mapping[str, float]
    #: One-line rationale per variant.
    reasons: Mapping[str, str]

    def ranking(self) -> tuple[str, ...]:
        return tuple(sorted(self.scores, key=lambda v: self.scores[v]))


#: Fractional cost of Polly's runtime versioning checks (mirrors the
#: polyhedral pass's ``_VERSIONING_OVERHEAD``) — the reason plain LLVM
#: beats LLVM+Polly whenever tiling has nothing to block.
_POLLY_OVERHEAD = 0.02


def _tile_budget(machine, nf: NestFacts) -> int:
    """The per-tile working-set budget the polyhedral pass would use."""
    threads = (
        machine.topology.cores_per_domain if nf.parallel_levels else 1
    )
    return machine.cache_levels[-1].effective_capacity(threads) // 2


def _nest_score(nf: NestFacts, np: NestPrediction, caps, flags, language, machine) -> float:
    """Static proxy for one nest's execution time under one variant.

    Builds the *predicted* codegen summary — the transforms the gate
    replay says fire, priced with the variant's quality tables — and
    hands it to the ECM machine model.  No compiler pass runs; the
    passes' incremental adjustments (epilogue factors, prefetch
    schedules, unroll tuning) are deliberately absent, so this is an
    idealized prediction, not a reimplementation of ``compile()``.
    Only the cross-variant ordering is consumed.
    """
    # Late imports: repro.perf sits above the staticanalysis layer.
    from repro.compilers.base import CodegenNestInfo
    from repro.perf.ecm import nest_time

    nest = (
        nf.nest.permuted(np.order) if np.order != nf.loop_vars else nf.nest
    )
    lanes = max(machine.core.fp_pipe_bits // 64, 1) if np.vectorized else 1
    info = CodegenNestInfo(
        nest=nest,
        vectorized=np.vectorized,
        vec_lanes=lanes,
        vec_efficiency=caps.vec_quality.get(language, 0.8),
        scalar_quality=caps.scalar_quality.get(language, 0.8),
        memory_schedule_quality=caps.memory_schedule_quality.get(language, 0.9),
        unroll_factor=4,
        tile_working_set=_tile_budget(machine, nf) if np.tiled else None,
        runtime_check_overhead=(
            _POLLY_OVERHEAD if np.tiled or np.reordered_by == "polly" else 0.0
        ),
        large_pages=flags.largepage,
    )
    return nest_time(info, machine).total_s


def _kernel_score(
    kernel: Kernel, facts: KernelFacts, pred: VariantPrediction, machine
) -> tuple[float, str]:
    """Static best-variant proxy score for one kernel (lower = faster)."""
    if pred.status == STATUS_COMPILE_ERROR:
        return float("inf"), "does not compile"
    if pred.status == STATUS_RUNTIME_FAULT:
        return float("inf"), "miscompiled (runtime fault)"
    if pred.eliminated:
        return 1e-9, "computation eliminated as dead code"
    caps, flags = _variant_model(pred.codegen_variant)
    language = kernel.language
    total = 0.0
    notes: list[str] = []
    for nf, np in zip(facts.nests, pred.nests):
        total += _nest_score(nf, np, caps, flags, language, machine)
        if np.tiled and nf.working_sets[0] > _tile_budget(machine, nf):
            notes.append(f"tiles {np.label}")
        if np.interchanged:
            notes.append(f"reorders {np.label} to {''.join(np.order)}")
        if not np.vectorized and np.vector_blocker:
            notes.append(f"scalar {np.label}: {np.vector_blocker}")
    total *= pred.anomaly_multiplier
    if pred.anomaly_multiplier != 1.0:
        notes.append(f"empirical x{pred.anomaly_multiplier:g}")
    return total, "; ".join(notes) if notes else "no divergent transform"


def recommend_compiler(
    kernel: Kernel, ctx, variants: tuple[str, ...] = STUDY_VARIANTS
) -> Recommendation:
    """Predict the fastest study variant for one kernel, statically."""
    facts = ctx.facts(kernel)
    preds = predict_transforms(kernel, ctx, variants)
    scores: dict[str, float] = {}
    reasons: dict[str, str] = {}
    for variant in variants:
        scores[variant], reasons[variant] = _kernel_score(
            kernel, facts, preds[variant], ctx.machine
        )
    best = min(variants, key=lambda v: (scores[v], variants.index(v)))
    return Recommendation(
        name=kernel.name, variant=best, scores=scores, reasons=reasons
    )


def recommend_benchmark(
    benchmark, ctx, variants: tuple[str, ...] = STUDY_VARIANTS
) -> Recommendation:
    """Best-variant prediction for a whole benchmark (scores summed
    over its kernels; a broken kernel disqualifies the variant)."""
    scores = {v: 0.0 for v in variants}
    reasons: dict[str, list[str]] = {v: [] for v in variants}
    seen: set[int] = set()
    for kernel in benchmark.kernels():
        if id(kernel) in seen:
            continue
        seen.add(id(kernel))
        rec = recommend_compiler(kernel, ctx, variants)
        for v in variants:
            scores[v] += rec.scores[v]
            if rec.reasons[v] and rec.reasons[v] != "no divergent transform":
                reasons[v].append(f"{kernel.name}: {rec.reasons[v]}")
    best = min(variants, key=lambda v: (scores[v], variants.index(v)))
    return Recommendation(
        name=benchmark.full_name,
        variant=best,
        scores=scores,
        reasons={v: "; ".join(r) if r else "no divergent transform" for v, r in reasons.items()},
    )


def grid_best_variants(
    *,
    suites: "tuple[str, ...] | None" = None,
    benchmarks: "tuple[str, ...] | None" = None,
    variants: tuple[str, ...] = STUDY_VARIANTS,
    machine=None,
) -> dict[str, str]:
    """The consistency oracle: per-benchmark fastest variant according
    to the batched cost model (:func:`repro.perf.batch.evaluate_grid`)."""
    # Late import: repro.perf sits above the staticanalysis layer.
    from repro.perf.batch import GridSpec, evaluate_grid

    grid = evaluate_grid(
        GridSpec(machine=machine, variants=variants, suites=suites, benchmarks=benchmarks)
    )
    best: dict[str, tuple[str, float]] = {}
    for cell in grid.cells:
        time_s = cell.best.time_s
        prev = best.get(cell.benchmark)
        if prev is None or time_s < prev[1]:
            best[cell.benchmark] = (cell.variant, time_s)
    return {bench: variant for bench, (variant, _t) in best.items()}
