"""The diagnostics model: severities, categories, findings, sinks.

A :class:`Diagnostic` is one finding of the static analyzer — a stable
rule ID (``RACE001``, ``BND002``, ...), a severity, a category, and a
location inside the kernel IR (kernel / nest / statement / array /
loop).  The model is deliberately free of IR imports so that low-level
modules (``repro.ir.validate``) can produce diagnostics without
circular dependencies; locations are therefore plain strings.

Severities follow the compiler convention:

* ``ERROR``   — the kernel is wrong (data race, out-of-bounds access);
  running it would burn node-hours on garbage.  Campaigns with
  ``lint_policy="error"`` skip these cells.
* ``WARNING`` — probably wrong or leaving large performance on the
  table (missed interchange, non-associative parallel reduction).
* ``NOTE``    — informational (vectorization needs runtime alias
  checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ReproError


class LintError(ReproError):
    """Static-analysis subsystem misuse (unknown rule, bad policy)."""


class Severity(enum.Enum):
    """How bad a finding is; ordered (ERROR > WARNING > NOTE)."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        """True when this severity is ``other`` or worse."""
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: "str | Severity") -> "Severity":
        if isinstance(text, Severity):
            return text
        try:
            return cls(text.lower())
        except ValueError:
            known = ", ".join(s.value for s in cls)
            raise LintError(f"unknown severity {text!r}; known: {known}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Severity.{self.name}"


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: SARIF 2.1.0 result levels for each severity.
SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


class Category(enum.Enum):
    """What aspect of the kernel a rule examines."""

    #: Wrong answers / undefined behaviour (races, bounds, init order).
    CORRECTNESS = "correctness"
    #: Leaves performance on the table (missed interchange, no SIMD).
    PERFORMANCE = "performance"
    #: Structurally malformed IR (inconsistent declarations).
    STRUCTURE = "structure"
    #: Compiles and runs, but results depend on the toolchain
    #: (FP reassociation, fast-math sensitivity).
    PORTABILITY = "portability"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Category.{self.name}"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding, locatable and serializable."""

    rule_id: str
    severity: Severity
    category: Category
    message: str
    #: Kernel name the finding belongs to ("" for free-standing nests).
    kernel: str = ""
    #: Nest label within the kernel ("nest0", ...).
    nest: str = ""
    #: Statement name within the nest ("S0", ...).
    statement: str = ""
    #: Array the finding concerns, if any.
    array: str = ""
    #: Loop variable the finding concerns, if any.
    loop: str = ""
    #: Optional remediation hint shown alongside the message.
    hint: str = ""

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise LintError("a diagnostic needs a rule id")
        if not self.message:
            raise LintError(f"diagnostic {self.rule_id}: empty message")

    @property
    def location(self) -> str:
        """Dotted logical location, e.g. ``2mm/nest0/S0``."""
        parts = [p for p in (self.kernel, self.nest, self.statement) if p]
        return "/".join(parts)

    def with_kernel(self, kernel: str) -> "Diagnostic":
        """A copy bound to a kernel name (used when a nest-level check
        runs before the kernel name is known)."""
        return replace(self, kernel=kernel)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dict; empty optional fields are omitted."""
        out: dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "category": self.category.value,
            "message": self.message,
        }
        for key in ("kernel", "nest", "statement", "array", "loop", "hint"):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "Diagnostic":
        try:
            return cls(
                rule_id=raw["rule"],
                severity=Severity(raw["severity"]),
                category=Category(raw["category"]),
                message=raw["message"],
                kernel=raw.get("kernel", ""),
                nest=raw.get("nest", ""),
                statement=raw.get("statement", ""),
                array=raw.get("array", ""),
                loop=raw.get("loop", ""),
                hint=raw.get("hint", ""),
            )
        except (KeyError, ValueError) as exc:
            raise LintError(f"malformed diagnostic dict: {exc}") from None

    def __str__(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        hint = f" ({self.hint})" if self.hint else ""
        return f"{self.severity.value}: {self.rule_id}:{loc} {self.message}{hint}"


@dataclass
class DiagnosticSink:
    """Collects diagnostics during one analysis walk.

    Rules emit into the sink; the driver snapshots it afterwards.  The
    sink keeps arrival order (rules run in registration order, nests in
    program order) so reports are stable.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: "list[Diagnostic] | tuple[Diagnostic, ...]") -> None:
        self.diagnostics.extend(diags)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- queries ---------------------------------------------------------

    @property
    def max_severity(self) -> "Severity | None":
        """The worst severity collected (None when empty)."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """All findings at ``severity`` or worse."""
        return tuple(d for d in self.diagnostics if d.severity.at_least(severity))

    def by_rule(self) -> dict[str, tuple[Diagnostic, ...]]:
        """Findings grouped by rule id, in first-seen order."""
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule_id, []).append(d)
        return {rule: tuple(ds) for rule, ds in out.items()}

    def snapshot(self) -> tuple[Diagnostic, ...]:
        return tuple(self.diagnostics)


def dedupe_diagnostics(
    diags: "tuple[Diagnostic, ...] | list[Diagnostic]",
) -> tuple[Diagnostic, ...]:
    """Drop exact repeats, keeping first-occurrence order.

    A :class:`Diagnostic` is a frozen value object, so equality is the
    stable identity of a finding: two analysis passes over the same
    kernel (e.g. a benchmark whose translation units share one kernel
    object, or a memo re-emission on a warm cache) produce equal
    diagnostics, which collapse to one.
    """
    seen: set[Diagnostic] = set()
    out: list[Diagnostic] = []
    for diag in diags:
        if diag in seen:
            continue
        seen.add(diag)
        out.append(diag)
    return tuple(out)


def max_severity(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> "Severity | None":
    """Worst severity in a collection (None when empty)."""
    if not diags:
        return None
    return max((d.severity for d in diags), key=lambda s: s.rank)


def has_at_least(
    diags: "tuple[Diagnostic, ...] | list[Diagnostic]", severity: Severity
) -> bool:
    """True when any finding is at ``severity`` or worse."""
    return any(d.severity.at_least(severity) for d in diags)
