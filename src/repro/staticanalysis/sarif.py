"""Lint output formats: human text, plain JSON, and SARIF 2.1.0.

SARIF is the interchange format CI systems ingest (GitHub code
scanning among them); :func:`to_sarif` emits one run with the rule
catalog as ``tool.driver.rules`` and one result per finding, using
logical locations (``kernel/nest/statement`` — the IR has no source
files).  :func:`validate_sarif` structurally checks a document the way
:func:`repro.telemetry.export.validate_chrome_trace` checks traces:
enough to catch schema drift in tests and CI without a schema library.
"""

from __future__ import annotations

import json

from repro.staticanalysis.diagnostics import SARIF_LEVELS, Diagnostic, Severity
from repro.staticanalysis.registry import Rule, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
#: SARIF requires a URI for artifact locations; the IR is synthetic,
#: so findings carry only logical locations under this namespace.
LOGICAL_KIND = "module"


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.help_text or rule.title},
        "defaultConfiguration": {"level": SARIF_LEVELS[rule.severity]},
        "properties": {"category": rule.category.value},
    }


def _result(diag: Diagnostic) -> dict:
    out: dict = {
        "ruleId": diag.rule_id,
        "level": SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
    }
    if diag.location:
        out["locations"] = [
            {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": diag.location,
                        "kind": LOGICAL_KIND,
                    }
                ]
            }
        ]
    props = {
        key: getattr(diag, key)
        for key in ("kernel", "nest", "statement", "array", "loop", "hint")
        if getattr(diag, key)
    }
    props["category"] = diag.category.value
    out["properties"] = props
    return out


def to_sarif(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> dict:
    """A SARIF 2.1.0 document (dict) for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://github.com/",
                        "rules": [_rule_descriptor(r) for r in all_rules()],
                    }
                },
                "results": [_result(d) for d in diags],
            }
        ],
    }


def validate_sarif(doc: dict) -> list[str]:
    """Structural problems of a SARIF document (empty = valid).

    Checks the invariants this package relies on: version, the runs
    array, tool driver naming, rule descriptors, and per-result
    ``ruleId``/``level``/``message`` with levels from the SARIF set
    and rule IDs resolving against the declared rules.
    """
    problems: list[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version is {doc.get('version')!r}, expected {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty list"]
    levels = set(SARIF_LEVELS.values()) | {"none"}
    for i, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"run {i}: tool.driver.name missing")
        declared = set()
        for j, rule in enumerate(driver.get("rules", [])):
            rid = rule.get("id")
            if not rid:
                problems.append(f"run {i}: rule {j} has no id")
            else:
                declared.add(rid)
        for j, result in enumerate(run.get("results", [])):
            rid = result.get("ruleId")
            if not rid:
                problems.append(f"run {i}: result {j} has no ruleId")
            elif declared and rid not in declared:
                problems.append(f"run {i}: result {j} ruleId {rid!r} undeclared")
            if result.get("level") not in levels:
                problems.append(
                    f"run {i}: result {j} level {result.get('level')!r} invalid"
                )
            if "text" not in result.get("message", {}):
                problems.append(f"run {i}: result {j} has no message.text")
    return problems


# -- text / JSON renderers -------------------------------------------------


def render_text(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [str(d) for d in diags]
    counts = {sev: 0 for sev in Severity}
    for d in diags:
        counts[d.severity] += 1
    summary = (
        f"{len(lines)} finding(s): "
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.NOTE]} note(s)"
    )
    return "\n".join(lines + [summary]) if lines else summary


def findings_to_json(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> str:
    """Plain-JSON form: ``{"findings": [...]}`` with diagnostic dicts."""
    return json.dumps({"findings": [d.to_dict() for d in diags]}, indent=2)
