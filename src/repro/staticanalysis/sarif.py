"""Lint output formats: human text, plain JSON, and SARIF 2.1.0.

SARIF is the interchange format CI systems ingest (GitHub code
scanning among them); :func:`to_sarif` emits one run with the rule
catalog as ``tool.driver.rules`` and one result per finding.  Every
finding carries a logical location (``kernel/nest/statement``); when
the kernel objects are supplied, findings additionally carry physical
locations into a *deterministic IR rendering* — ``str(kernel)``
pseudo-source addressed as ``ir/<kernel>.ir`` relative to the
``REPOROOT`` URI base — with regions pointing at the offending nest,
loop, or statement line, and suggested-fix regions (reordered loop
headers) for the interchange findings (``OPT010``/``DIV001``).
URIs are repo-relative and contain nothing machine-specific, so SARIF
documents are byte-identical across checkouts.  :func:`validate_sarif`
structurally checks a document the way :func:`repro.telemetry.export.
validate_chrome_trace` checks traces: enough to catch schema drift in
tests and CI without a schema library.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable

from repro.staticanalysis.diagnostics import SARIF_LEVELS, Diagnostic, Severity
from repro.staticanalysis.registry import Rule, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
#: Kind of the logical locations (``kernel/nest/statement`` — the IR
#: has no source files).
LOGICAL_KIND = "module"
#: The single URI base every artifactLocation is relative to.  Left
#: unresolved on purpose: resolving it to an absolute path would make
#: the document differ between checkouts.
URI_BASE_ID = "REPOROOT"

#: Interchange hints embed the suggested order as "rewrite the nest as
#: <order>"; the fix builder parses it back out.
_ORDER_IN_HINT = re.compile(r"rewrite the nest as ([A-Za-z0-9_]+)")


def render_kernel_ir(kernel) -> str:
    """The deterministic pseudo-source a kernel's findings point into.

    ``str(kernel)`` is a stable function of the IR alone — no ids,
    paths, or timestamps — so regions computed against it are
    reproducible across processes and machines.
    """
    return str(kernel)


def kernel_artifact_uri(kernel_name: str) -> str:
    """Repo-relative artifact URI of a kernel's IR rendering."""
    return f"ir/{kernel_name}.ir"


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.help_text or rule.title},
        "defaultConfiguration": {"level": SARIF_LEVELS[rule.severity]},
        "properties": {"category": rule.category.value},
    }


class _IrIndex:
    """Line index into one kernel's deterministic IR rendering."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.lines = render_kernel_ir(kernel).splitlines()
        #: nest label -> (start line, end line), 1-based inclusive.
        self.nests: dict[str, tuple[int, int]] = {}
        #: (nest label, loop var) -> loop-header line.
        self.loops: dict[tuple[str, str], int] = {}
        #: statement name -> line.
        self.statements: dict[str, int] = {}
        nest_no = -1
        label = ""
        for no, line in enumerate(self.lines, start=1):
            if line.startswith("for "):
                nest_no += 1
                label = f"nest{nest_no}"
                self.nests[label] = (no, no)
            if not label:
                continue
            self.nests[label] = (self.nests[label][0], no)
            stripped = line.lstrip()
            if stripped.startswith("for "):
                var = stripped.split()[1]
                self.loops.setdefault((label, var), no)
            else:
                name = stripped.split(":", 1)[0]
                if name:
                    self.statements.setdefault(name, no)

    def region(self, diag: Diagnostic) -> "dict | None":
        if diag.statement and diag.statement in self.statements:
            line = self.statements[diag.statement]
            return {"startLine": line, "endLine": line}
        if diag.nest and diag.loop and (diag.nest, diag.loop) in self.loops:
            line = self.loops[(diag.nest, diag.loop)]
            return {"startLine": line, "endLine": line}
        if diag.nest and diag.nest in self.nests:
            start, end = self.nests[diag.nest]
            return {"startLine": start, "endLine": end}
        return {"startLine": 1, "endLine": max(len(self.lines), 1)}

    def _split_order(self, joined: str, loop_vars: tuple[str, ...]) -> "tuple[str, ...] | None":
        """Segment a joined order string ("ikj") back into loop vars."""
        remaining = set(loop_vars)
        out: list[str] = []

        def rec(text: str) -> bool:
            if not text:
                return not remaining
            for var in sorted(remaining, key=len, reverse=True):
                if text.startswith(var):
                    remaining.discard(var)
                    out.append(var)
                    if rec(text[len(var):]):
                        return True
                    out.pop()
                    remaining.add(var)
            return False

        return tuple(out) if rec(joined) else None

    def fix(self, diag: Diagnostic) -> "dict | None":
        """A suggested-fix region for an interchange finding: the
        nest's loop-header lines, rewritten in the suggested order."""
        match = _ORDER_IN_HINT.search(diag.hint)
        if not match or diag.nest not in self.nests:
            return None
        nest = next(
            (n for n in self.kernel.nests if n.label == diag.nest), None
        )
        if nest is None:
            return None
        order = self._split_order(match.group(1), nest.loop_vars)
        if order is None:
            return None
        start, _end = self.nests[diag.nest]
        headers: dict[str, str] = {}
        header_lines = 0
        for line in self.lines[start - 1:]:
            stripped = line.lstrip()
            if not stripped.startswith("for "):
                break
            headers[stripped.split()[1]] = stripped
            header_lines += 1
        if set(headers) != set(order):
            return None
        new_text = "\n".join(
            "  " * depth + headers[var] for depth, var in enumerate(order)
        )
        return {
            "description": {
                "text": f"reorder the {diag.nest} loops as "
                f"{''.join(order)}"
            },
            "artifactChanges": [
                {
                    "artifactLocation": {
                        "uri": kernel_artifact_uri(diag.kernel),
                        "uriBaseId": URI_BASE_ID,
                    },
                    "replacements": [
                        {
                            "deletedRegion": {
                                "startLine": start,
                                "endLine": start + header_lines - 1,
                            },
                            "insertedContent": {"text": new_text},
                        }
                    ],
                }
            ],
        }


def _result(diag: Diagnostic, index: "_IrIndex | None") -> dict:
    out: dict = {
        "ruleId": diag.rule_id,
        "level": SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
    }
    location: dict = {}
    if diag.location:
        location["logicalLocations"] = [
            {
                "fullyQualifiedName": diag.location,
                "kind": LOGICAL_KIND,
            }
        ]
    if index is not None:
        physical: dict = {
            "artifactLocation": {
                "uri": kernel_artifact_uri(diag.kernel),
                "uriBaseId": URI_BASE_ID,
            }
        }
        region = index.region(diag)
        if region is not None:
            physical["region"] = region
        location["physicalLocation"] = physical
    if location:
        out["locations"] = [location]
    if index is not None:
        fix = index.fix(diag)
        if fix is not None:
            out["fixes"] = [fix]
    props = {
        key: getattr(diag, key)
        for key in ("kernel", "nest", "statement", "array", "loop", "hint")
        if getattr(diag, key)
    }
    props["category"] = diag.category.value
    out["properties"] = props
    return out


def to_sarif(
    diags: "tuple[Diagnostic, ...] | list[Diagnostic]",
    kernels: "Iterable[object]" = (),
) -> dict:
    """A SARIF 2.1.0 document (dict) for one lint run.

    ``kernels`` — the kernel objects the findings refer to; when
    supplied, results referring to them carry physical locations (and,
    for interchange findings, suggested fixes) into the deterministic
    IR rendering of each kernel, addressed repo-relative under the
    ``REPOROOT`` URI base.
    """
    indexes = {k.name: _IrIndex(k) for k in kernels}  # type: ignore[attr-defined]
    artifact_names = sorted(
        {d.kernel for d in diags if d.kernel and d.kernel in indexes}
    )
    run: dict = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": "https://github.com/",
                "rules": [_rule_descriptor(r) for r in all_rules()],
            }
        },
        "originalUriBaseIds": {
            URI_BASE_ID: {"description": {"text": "repository root"}}
        },
        "artifacts": [
            {
                "location": {
                    "uri": kernel_artifact_uri(name),
                    "uriBaseId": URI_BASE_ID,
                },
                "description": {"text": f"IR rendering of kernel {name}"},
            }
            for name in artifact_names
        ],
        "results": [_result(d, indexes.get(d.kernel)) for d in diags],
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def validate_sarif(doc: dict) -> list[str]:
    """Structural problems of a SARIF document (empty = valid).

    Checks the invariants this package relies on: version, the runs
    array, tool driver naming, rule descriptors, per-result
    ``ruleId``/``level``/``message`` with levels from the SARIF set
    and rule IDs resolving against the declared rules, and — when
    physical locations are present — that every artifact URI is
    relative, declared in the run's ``artifacts`` array, anchored to a
    declared URI base, and that fixes carry well-formed replacement
    regions.
    """
    problems: list[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version is {doc.get('version')!r}, expected {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty list"]
    levels = set(SARIF_LEVELS.values()) | {"none"}
    for i, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"run {i}: tool.driver.name missing")
        declared = set()
        for j, rule in enumerate(driver.get("rules", [])):
            rid = rule.get("id")
            if not rid:
                problems.append(f"run {i}: rule {j} has no id")
            else:
                declared.add(rid)
        bases = set(run.get("originalUriBaseIds", {}))
        artifact_uris = set()
        for j, artifact in enumerate(run.get("artifacts", [])):
            uri = artifact.get("location", {}).get("uri", "")
            if not uri:
                problems.append(f"run {i}: artifact {j} has no location.uri")
            else:
                artifact_uris.add(uri)
            problems.extend(
                f"run {i}: artifact {j}: {p}"
                for p in _check_artifact_location(artifact.get("location", {}), bases)
            )
        for j, result in enumerate(run.get("results", [])):
            rid = result.get("ruleId")
            if not rid:
                problems.append(f"run {i}: result {j} has no ruleId")
            elif declared and rid not in declared:
                problems.append(f"run {i}: result {j} ruleId {rid!r} undeclared")
            if result.get("level") not in levels:
                problems.append(
                    f"run {i}: result {j} level {result.get('level')!r} invalid"
                )
            if "text" not in result.get("message", {}):
                problems.append(f"run {i}: result {j} has no message.text")
            where = f"run {i}: result {j}"
            for loc in result.get("locations", []):
                physical = loc.get("physicalLocation")
                if physical is None:
                    continue
                art = physical.get("artifactLocation", {})
                problems.extend(f"{where}: {p}" for p in _check_artifact_location(art, bases))
                uri = art.get("uri", "")
                if artifact_uris and uri and uri not in artifact_uris:
                    problems.append(f"{where}: uri {uri!r} not in run.artifacts")
                region = physical.get("region")
                if region is not None:
                    problems.extend(f"{where}: {p}" for p in _check_region(region))
            for k, fix in enumerate(result.get("fixes", [])):
                at = f"{where} fix {k}"
                if "text" not in fix.get("description", {}):
                    problems.append(f"{at}: no description.text")
                changes = fix.get("artifactChanges", [])
                if not changes:
                    problems.append(f"{at}: no artifactChanges")
                for change in changes:
                    problems.extend(
                        f"{at}: {p}"
                        for p in _check_artifact_location(
                            change.get("artifactLocation", {}), bases
                        )
                    )
                    replacements = change.get("replacements", [])
                    if not replacements:
                        problems.append(f"{at}: change has no replacements")
                    for rep in replacements:
                        problems.extend(
                            f"{at}: {p}" for p in _check_region(rep.get("deletedRegion", {}))
                        )
    return problems


def _check_artifact_location(location: dict, bases: set) -> list[str]:
    problems = []
    uri = location.get("uri", "")
    if uri.startswith(("/", "file:")) or "://" in uri or "\\" in uri:
        problems.append(f"uri {uri!r} is not a relative forward-slash path")
    base = location.get("uriBaseId")
    if base and bases and base not in bases:
        problems.append(f"uriBaseId {base!r} not declared in originalUriBaseIds")
    return problems


def _check_region(region: dict) -> list[str]:
    start = region.get("startLine")
    end = region.get("endLine", start)
    if not isinstance(start, int) or start < 1:
        return [f"region startLine {start!r} invalid"]
    if not isinstance(end, int) or end < start:
        return [f"region endLine {end!r} before startLine {start}"]
    return []


# -- text / JSON renderers -------------------------------------------------


def render_text(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [str(d) for d in diags]
    counts = {sev: 0 for sev in Severity}
    for d in diags:
        counts[d.severity] += 1
    summary = (
        f"{len(lines)} finding(s): "
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.NOTE]} note(s)"
    )
    return "\n".join(lines + [summary]) if lines else summary


def findings_to_json(diags: "tuple[Diagnostic, ...] | list[Diagnostic]") -> str:
    """Plain-JSON form: ``{"findings": [...]}`` with diagnostic dicts."""
    return json.dumps({"findings": [d.to_dict() for d in diags]}, indent=2)
