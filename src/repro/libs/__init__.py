"""Math-library models (SSL2 / BLAS / FFT).

The paper links Fujitsu's SSL2 wherever linear algebra is needed; time
spent inside such libraries is compiler-independent, which is why HPL
only moves ~5% between compilers (Sec. 3.2).
"""

from repro.libs.mathlib import LibraryCall, LibraryKind, library_time_s

__all__ = ["LibraryCall", "LibraryKind", "library_time_s"]
