"""Opaque math-library time model.

Benchmarks declare the work they hand to vendor libraries (SSL2 BLAS,
FFTW-style transforms, vendor RNGs) as :class:`LibraryCall` records —
flops (or bytes for BLAS-1/2-ish levels) plus a kind.  Library code is
pre-compiled: its efficiency depends on the *machine*, not the study
compiler, which is exactly the paper's HPL/SSL2 observation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SuiteError
from repro.machine.machine import Machine


class LibraryKind(enum.Enum):
    """What the library call is bound by."""

    #: Dense matrix-matrix (DGEMM-class): near peak flops.
    BLAS3 = "blas3"
    #: Matrix-vector / vector-vector: bandwidth bound.
    BLAS12 = "blas12"
    #: FFTs: a blend (modelled as a fraction of peak).
    FFT = "fft"
    #: Vendor RNG / special functions.
    RNG = "rng"


#: Fraction of machine peak flop/s the library sustains, per kind.
_FLOP_EFFICIENCY = {
    LibraryKind.BLAS3: 0.88,
    LibraryKind.FFT: 0.25,
    LibraryKind.RNG: 0.10,
}

#: Fraction of sustained memory bandwidth BLAS-1/2 achieves.
_BW_EFFICIENCY = {LibraryKind.BLAS12: 0.85}


@dataclass(frozen=True)
class LibraryCall:
    """Work delegated to an opaque, pre-compiled library."""

    kind: LibraryKind
    #: Floating-point operations per invocation (BLAS3/FFT/RNG).
    flops: float = 0.0
    #: Bytes moved per invocation (BLAS12).
    bytes_moved: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise SuiteError("library call work must be non-negative")
        if self.kind is LibraryKind.BLAS12 and self.bytes_moved == 0:
            raise SuiteError("BLAS12 calls are sized by bytes_moved")
        if self.kind is not LibraryKind.BLAS12 and self.flops == 0:
            raise SuiteError(f"{self.kind.value} calls are sized by flops")


def library_time_s(
    call: LibraryCall,
    machine: Machine,
    *,
    threads: int,
    domains: int = 1,
    work_fraction: float = 1.0,
) -> float:
    """Wall-clock seconds for one library invocation on ``threads`` cores."""
    threads = max(1, threads)
    if call.kind is LibraryKind.BLAS12:
        per_domain = machine.memory.bandwidth(max(1, threads // max(domains, 1)))
        bw = per_domain * domains * _BW_EFFICIENCY[call.kind]
        return call.bytes_moved * work_fraction / bw
    eff = _FLOP_EFFICIENCY[call.kind]
    rate = machine.core.peak_dp_flops * threads * eff
    return call.flops * work_fraction / rate
