"""Ablation: LLVM vs. LLVM+Polly across every suite.

Paper (conclusion): "the polly optimizations seem rarely applicable or
beneficial outside this benchmark set [PolyBench]" — XSBench being the
one real-workload exception (Sec. 3.2).
"""

from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(
        CampaignConfig(variants=("LLVM", "LLVM+Polly"))
    ).run()


def test_polly_rarely_helps_outside_polybench(benchmark):
    result = benchmark(_regenerate)
    helped_inside = []
    helped_outside = []
    for bench in result.benchmarks():
        llvm = result.get(bench, "LLVM")
        polly = result.get(bench, "LLVM+Polly")
        if not (llvm.valid and polly.valid):
            continue
        speedup = llvm.best_s / polly.best_s
        if speedup > 1.05:
            (helped_inside if bench.startswith("polybench.") else helped_outside).append(
                (bench, speedup)
            )
    print()
    print(f"polly helps on {len(helped_inside)} PolyBench kernels")
    print(f"polly helps on {len(helped_outside)} other benchmarks: {helped_outside}")

    # Polly's benefit BEYOND plain LLVM 12 concentrates on the kernels
    # where rescheduling/tiling/DCE change the boundedness (mvt and the
    # factorizations); LLVM 12's own loop transforms already fix the
    # rest of the suite relative to FJtrad.
    assert len(helped_inside) >= 3
    assert any(b == "polybench.mvt" for b, _ in helped_inside)
    # "rarely applicable or beneficial" outside — a handful at most,
    # and XSBench must be among them
    assert 1 <= len(helped_outside) <= 5
    assert any(b == "ecp.xsbench" for b, _ in helped_outside)
    # and never a large regression
    for bench in result.benchmarks():
        llvm = result.get(bench, "LLVM")
        polly = result.get(bench, "LLVM+Polly")
        if llvm.valid and polly.valid:
            assert polly.best_s < llvm.best_s * 1.10, bench
