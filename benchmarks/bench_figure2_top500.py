"""Regenerates the Figure 2 rows for HPL, HPCG, and BabelStream.

Paper shape (Sec. 3.2): HPL moves only ~5% (SSL2 dominates); Babel-
Stream shows the largest switch gain, up to 51% lower runtime with
LLVM or GNU.
"""

from repro.analysis import benchmark_gains, figure2
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(CampaignConfig(suites=("top500",))).run()


def test_figure2_top500(benchmark):
    result = benchmark(_regenerate)
    print()
    print(figure2(result).render())

    gains = {g.benchmark: g for g in benchmark_gains(result)}
    assert 1.02 <= gains["top500.hpl"].best_gain <= 1.10
    # 51% lower runtime == 2.04x; "up to" -> accept 1.3x..2.04x
    stream = gains["top500.babelstream"]
    assert 1.30 <= stream.best_gain <= 2.04
    assert stream.best_variant in ("LLVM", "GNU", "FJclang")
    # BabelStream's famous run-to-run variability (CV up to 22%)
    cvs = [result.get("top500.babelstream", v).cv for v in result.variants()]
    assert max(cvs) > 0.05
