"""Regenerates the paper's closing number: "across all 108 benchmarks
and realistic workloads, we see that a median runtime improvement of
16% is possible by selecting an appropriate compiler"."""

from repro.analysis import overall_summary
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    result = CampaignSession(CampaignConfig()).run()
    return overall_summary(result), result


def test_overall_median(benchmark):
    summary, result = benchmark(_regenerate)
    print()
    print(summary)

    assert summary.count == 108
    assert 1.10 <= summary.median_gain <= 1.26  # paper: 16%
    # A best-compiler choice exists for every benchmark (no row where
    # every compiler failed).
    assert all(
        any(result.get(b, v).valid for v in result.variants())
        for b in result.benchmarks()
    )
