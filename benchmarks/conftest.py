"""Shared fixtures for the figure/table regeneration benchmarks.

Each ``bench_*.py`` regenerates one of the paper's artifacts (timed by
pytest-benchmark) and asserts the paper's shape claims on the output.
Session-scoped campaign fixtures let the assertion-only benchmarks
avoid recomputation.
"""

from __future__ import annotations

import pytest

from repro.api import CampaignConfig, CampaignSession
from repro.harness import run_polybench_xeon


@pytest.fixture(scope="session")
def full_campaign():
    return CampaignSession(CampaignConfig()).run()


@pytest.fixture(scope="session")
def xeon_reference():
    return run_polybench_xeon()


def suite_campaign(name: str):
    """Run the campaign for a single suite (used inside timed bodies)."""
    return CampaignSession(CampaignConfig(suites=(name,))).run()
