"""Shared fixtures for the figure/table regeneration benchmarks.

Each ``bench_*.py`` regenerates one of the paper's artifacts (timed by
pytest-benchmark) and asserts the paper's shape claims on the output.
Session-scoped campaign fixtures let the assertion-only benchmarks
avoid recomputation.
"""

from __future__ import annotations

import pytest

from repro.harness import run_campaign, run_polybench_xeon
from repro.suites import all_suites, get_suite


@pytest.fixture(scope="session")
def full_campaign():
    return run_campaign()


@pytest.fixture(scope="session")
def xeon_reference():
    return run_polybench_xeon()


def suite_campaign(name: str):
    """Run the campaign for a single suite (used inside timed bodies)."""
    return run_campaign(suites=(get_suite(name),))
