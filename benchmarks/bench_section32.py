"""Regenerates the Section 3.2 statistics (TOP500 metrics, ECP, Fiber).

Paper values: HPL ~5% (SSL2-bound); BabelStream up to 51% lower
runtime; ECP average 1.65x / median 1.09x with XSBench at 6.7x;
Fujitsu dominates Fiber with FFB and mVMC the exceptions.
"""

from repro.analysis import benchmark_gains, suite_summary
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(
        CampaignConfig(suites=("top500", "ecp", "fiber"))
    ).run()


def test_section32_statistics(benchmark):
    result = benchmark(_regenerate)
    gains = {g.benchmark: g.best_gain for g in benchmark_gains(result)}
    ecp = suite_summary(result, "ecp")
    print()
    print(f"HPL gain:         {gains['top500.hpl']:.3f} (paper ~1.05)")
    print(f"BabelStream gain: {gains['top500.babelstream']:.3f} (paper <= 2.04)")
    print(f"ECP:              {ecp}")
    print(f"XSBench gain:     {gains['ecp.xsbench']:.2f} (paper 6.7)")

    assert 1.02 <= gains["top500.hpl"] <= 1.10
    assert 1.30 <= gains["top500.babelstream"] <= 2.04
    assert 1.40 <= ecp.mean_gain <= 1.95
    assert 1.02 <= ecp.median_gain <= 1.22
    assert 5.4 <= gains["ecp.xsbench"] <= 8.0
    assert gains["fiber.ffb"] > 1.2
    assert gains["fiber.mvmc"] > 1.2
