"""Ablation: the recommended 4 ranks x 12 threads vs. the exploration
phase's choices.

Paper (conclusion): "for 'legacy' applications, the recommended usage
model of 4 ranks and 12 threads per A64FX node results in suboptimal
time-to-solution more often than not".
"""

import pytest

from repro.machine import Placement, a64fx
from repro.perf import CompilationCache, benchmark_model
from repro.suites import all_benchmarks
from repro.suites.base import ParallelKind, ScalingKind


def _regenerate():
    machine = a64fx()
    cache = CompilationCache()
    rows = []
    for bench in all_benchmarks():
        if not (
            bench.parallel is ParallelKind.MPI_OPENMP
            and bench.scaling is ScalingKind.STRONG
        ):
            continue
        recommended = benchmark_model(
            bench, "FJtrad", machine, Placement(4, 12), cache=cache
        )
        if not recommended.valid:
            continue
        # best placement found by the exploration machinery
        from repro.harness import explore

        placement, _, explored = explore(bench, "FJtrad", machine, cache=cache)
        rows.append((bench.full_name, recommended.time_s, explored.time_s, placement))
    return rows


def test_recommended_vs_explored(benchmark):
    rows = benchmark(_regenerate)
    print()
    suboptimal = 0
    for name, rec, best, placement in rows:
        flag = "<-- suboptimal" if best < rec * 0.999 else ""
        print(f"{name:24s} 4x12={rec:8.3f}s best({placement})={best:8.3f}s {flag}")
        if best < rec * 0.999:
            suboptimal += 1
    # "more often than not" (paper conclusion)
    assert suboptimal / len(rows) > 0.5
    # but the recommendation is a sane starting point, never catastrophic
    for _, rec, best, _ in rows:
        assert rec / best < 3.0
