"""Regenerates the Section 2.4 variability observations.

Paper: "we experience low run-to-run variability on A64FX.  For
example, AMG's coefficient of variation in runtime was below 0.114%,
and we only see high variability in BabelStream with a CV of up to 22%
which is still noticeably smaller than the gap between compilers."
"""

from repro.analysis import variability_report
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    result = CampaignSession(
        CampaignConfig(suites=("ecp", "top500"))
    ).run()
    return variability_report(result), result


def test_variability(benchmark):
    report, result = benchmark(_regenerate)
    print()
    for name in ("ecp.amg", "top500.babelstream", "top500.hpl"):
        print(f"{name:24s} max CV = {report[name] * 100:.3f}%")

    assert report["ecp.amg"] < 0.00228  # paper: < 0.114%
    assert 0.05 <= report["top500.babelstream"] <= 0.30  # paper: up to 22%
    # "still noticeably smaller than the gap between compilers"
    times = {v: result.get("top500.babelstream", v).best_s for v in result.variants()}
    gap = max(times.values()) / min(times.values()) - 1.0
    assert gap > report["top500.babelstream"]
    # everything else stays quiet
    assert sum(1 for cv in report.values() if cv > 0.05) == 1
