"""Regenerates the Section 3.3 statistics (SPEC CPU + SPEC OMP).

Paper values: kdtree 16.5x; average improvement 49% in SPEC CPU and
2.5x in SPEC OMP; median across both suites 14%.
"""

import statistics

from repro.analysis import benchmark_gains, suite_summary
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(
        CampaignConfig(suites=("spec_cpu", "spec_omp"))
    ).run()


def test_section33_statistics(benchmark):
    result = benchmark(_regenerate)
    cpu = suite_summary(result, "spec_cpu")
    omp = suite_summary(result, "spec_omp")
    gains = [g.best_gain for g in benchmark_gains(result)]
    median_both = statistics.median(gains)
    print()
    print(f"SPEC CPU: {cpu}")
    print(f"SPEC OMP: {omp}")
    print(f"median across both suites: {median_both:.3f} (paper 1.14)")

    assert 1.30 <= cpu.mean_gain <= 1.70  # paper: 49%
    assert 2.0 <= omp.mean_gain <= 3.1  # paper: 2.5x
    assert 1.06 <= median_both <= 1.25  # paper: 14%
    kdtree = next(
        g for g in benchmark_gains(result) if g.benchmark == "spec_omp.376.kdtree"
    )
    assert 12.0 <= kdtree.best_gain <= 21.0  # paper: 16.5x
