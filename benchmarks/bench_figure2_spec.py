"""Regenerates the Figure 2 rows for SPEC CPU [speed] and SPEC OMP.

Paper shape (Sec. 3.3): FJtrad beats the clang-based compilers on the
integer codes while GNU almost universally beats FJtrad there; GNU is
the worst choice for the multi-threaded FP codes; kdtree shows a 16.5x
best-compiler win.
"""

from repro.analysis import benchmark_gains, figure2
from repro.analysis.report import SPEC_INT
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(
        CampaignConfig(suites=("spec_cpu", "spec_omp"))
    ).run()


def test_figure2_spec(benchmark):
    result = benchmark(_regenerate)
    print()
    print(figure2(result).render())

    # integer-half ordering: GNU > FJtrad > clang-based
    gnu_beats_fj = 0
    fj_beats_clang = 0
    for bench in SPEC_INT:
        fj = result.get(bench, "FJtrad").best_s
        if result.get(bench, "GNU").best_s < fj * 0.98:
            gnu_beats_fj += 1
        clang_best = min(
            result.get(bench, "LLVM").best_s, result.get(bench, "FJclang").best_s
        )
        if fj < clang_best * 1.02:
            fj_beats_clang += 1
    assert gnu_beats_fj >= 8
    assert fj_beats_clang >= 8

    gains = {g.benchmark: g for g in benchmark_gains(result)}
    kdtree = gains["spec_omp.376.kdtree"]
    assert 12.0 <= kdtree.best_gain <= 21.0  # paper: 16.5x
    assert kdtree.best_variant in ("LLVM", "LLVM+Polly", "FJclang")
