"""Regenerates the Figure 2 rows for the 22 RIKEN micro kernels.

Paper shape (Sec. 3.1): FJtrad wins nearly everywhere (co-design);
only GNU noticeably beats it, on 4 of 22; GNU also produces 6 runtime
errors, and Kernel 22 carries a compiler-error cell.
"""

from repro.analysis import benchmark_gains, figure2, suite_summary
from repro.api import CampaignConfig, CampaignSession
from repro.harness import STATUS_COMPILE_ERROR, STATUS_RUNTIME_ERROR


def _regenerate():
    return CampaignSession(CampaignConfig(suites=("micro",))).run()


def test_figure2_micro(benchmark):
    result = benchmark(_regenerate)
    fig = figure2(result)
    print()
    print(fig.render())

    summary = suite_summary(result, "micro")
    assert 1.10 <= summary.mean_gain <= 1.26  # paper: 17% average
    assert summary.median_gain <= 1.03  # paper: 0% median
    assert 2.0 <= summary.peak_gain <= 2.9  # paper: 2.4x peak

    gnu_wins = [
        g
        for g in benchmark_gains(result)
        if g.best_variant == "GNU" and g.best_gain > 1.1
    ]
    assert len(gnu_wins) == 4

    statuses = [r.status for r in result.records.values()]
    assert statuses.count(STATUS_RUNTIME_ERROR) == 6
    assert statuses.count(STATUS_COMPILE_ERROR) == 1
    assert result.get("micro.k22", "FJclang").status == STATUS_COMPILE_ERROR
