"""Regenerates the Figure 2 rows for the 30 PolyBench kernels.

Paper shape (Sec. 3.1): "the roles reverse, with LLVM+Polly showing the
best results, followed by FJclang in some cases"; median best-compiler
speedup 3.8x; mvt > 250,000x via the polyhedral configuration.
"""

from repro.analysis import benchmark_gains, figure2, suite_summary
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(CampaignConfig(suites=("polybench",))).run()


def test_figure2_polybench(benchmark):
    result = benchmark(_regenerate)
    print()
    print(figure2(result).render())

    summary = suite_summary(result, "polybench")
    assert 2.6 <= summary.median_gain <= 5.2  # paper: 3.8x

    gains = {g.benchmark: g for g in benchmark_gains(result)}
    assert gains["polybench.mvt"].best_gain > 250_000
    assert gains["polybench.mvt"].best_variant == "LLVM+Polly"

    llvm_family_wins = sum(
        1
        for g in gains.values()
        if g.best_variant in ("LLVM", "LLVM+Polly") and g.best_gain > 1.05
    )
    assert llvm_family_wins >= 12
