"""Regenerates the Figure 2 rows for the 11 ECP proxy applications.

Paper shape (Sec. 3.2): "the user would be advised to switch to LLVM or
GNU in almost all cases", average speedup 1.65x (median 1.09x), with
XSBench's 6.7x Polly win the salient cell.
"""

from repro.analysis import benchmark_gains, figure2, suite_summary
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(CampaignConfig(suites=("ecp",))).run()


def test_figure2_ecp(benchmark):
    result = benchmark(_regenerate)
    print()
    print(figure2(result).render())

    summary = suite_summary(result, "ecp")
    assert 1.40 <= summary.mean_gain <= 1.95  # paper: 1.65x
    assert 1.02 <= summary.median_gain <= 1.22  # paper: 1.09x

    gains = {g.benchmark: g for g in benchmark_gains(result)}
    xs = gains["ecp.xsbench"]
    assert 5.4 <= xs.best_gain <= 8.0  # paper: 6.7x
    assert xs.best_variant == "LLVM+Polly"

    # "switch to LLVM or GNU in almost all cases"
    non_fujitsu_wins = sum(
        1
        for g in gains.values()
        if g.best_variant in ("LLVM", "LLVM+Polly", "GNU") or g.best_gain < 1.05
    )
    assert non_fujitsu_wins >= 9
