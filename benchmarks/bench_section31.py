"""Regenerates the Section 3.1 statistics (micro kernels + PolyBench).

Paper values: micro — switching to the best compiler cuts runtime 17%
on average, median 0%, peak 2.4x.  PolyBench — median best-compiler
speedup 3.8x; mvt over 250,000x.
"""

from repro.analysis import overall_summary, suite_summary, summarize, benchmark_gains
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    result = CampaignSession(
        CampaignConfig(suites=("micro", "polybench"))
    ).run()
    return suite_summary(result, "micro"), suite_summary(result, "polybench"), result


def test_section31_statistics(benchmark):
    micro, pb, result = benchmark(_regenerate)
    print()
    print(f"micro:     {micro}")
    print(f"polybench: {pb}")

    # paper: "reduce the runtime by 17% on average, with a median of 0%,
    # and peak of 2.4x improvement"
    assert 1.10 <= micro.mean_gain <= 1.26
    assert micro.median_gain <= 1.03
    assert 2.0 <= micro.peak_gain <= 2.9

    # paper: "Choosing the best compiler over FJtrad results in a median
    # speedup of 3.8x" and "for mvt ... over 250.000x speedup"
    assert 2.6 <= pb.median_gain <= 5.2
    mvt = next(g for g in benchmark_gains(result) if g.benchmark == "polybench.mvt")
    assert mvt.best_gain > 250_000
