"""Regenerates Figure 1: PolyBench time-to-solution, Xeon (icc) vs.
A64FX (FJtrad), recommended compilers and flags on both sides.

Paper shape: the Xeon is unexpectedly faster on most kernels — up to
two orders of magnitude — with the compute-bound ``2mm``/``3mm``
explicitly called out.
"""

from repro.analysis import figure1
from repro.api import CampaignConfig, CampaignSession
from repro.harness import run_polybench_xeon


def _regenerate():
    a64 = CampaignSession(
        CampaignConfig(suites=("polybench",), variants=("FJtrad",))
    ).run()
    xeon = run_polybench_xeon()
    return figure1(a64, xeon)


def test_figure1(benchmark):
    fig = benchmark(_regenerate)
    print()
    print(fig.render())

    assert len(fig.rows) == 30
    # "up to two orders of magnitude"
    assert 30 <= fig.max_slowdown <= 500
    # 2mm / 3mm called out as unexpectedly slow despite being compute-bound
    assert fig.row("2mm").slowdown > 8
    assert fig.row("3mm").slowdown > 8
    # the A64FX keeps its bandwidth advantage on pure streaming kernels
    assert fig.row("jacobi-1d").slowdown < 3
    # most kernels favour the Xeon
    assert sum(1 for r in fig.rows if r.slowdown > 1) >= 20
