"""Regenerates the Figure 2 rows for the 8 RIKEN Fiber mini-apps.

Paper shape (Sec. 3.2): "With a few exceptions, like FFB and mVMC,
Fujitsu dominates the other compilers on Fiber mini-apps, which is
consistent with the Micro Kernel results".
"""

from repro.analysis import benchmark_gains, figure2
from repro.api import CampaignConfig, CampaignSession


def _regenerate():
    return CampaignSession(CampaignConfig(suites=("fiber",))).run()


def test_figure2_fiber(benchmark):
    result = benchmark(_regenerate)
    print()
    print(figure2(result).render())

    gains = {g.benchmark: g for g in benchmark_gains(result)}
    # Fujitsu (near-)best on most of the suite
    fj_dominant = sum(1 for g in gains.values() if g.best_gain <= 1.05)
    assert fj_dominant >= 5

    # the two named exceptions
    assert gains["fiber.ffb"].best_gain > 1.2
    assert gains["fiber.mvmc"].best_gain > 1.2
