"""Engine performance: parallel speedup and warm-cache behaviour.

The acceptance bar for the campaign engine: ``workers=4`` beats the
serial loop by >1.5x wall-clock on the full 540-cell campaign (the
grid is embarrassingly parallel), and a warm persistent cache makes a
repeat campaign complete with zero model re-evaluations.

The speedup assertion needs real cores; on a single-core host the
measured ratio is still recorded and printed, but the >1.5x check is
skipped (there is no parallelism to be had).
"""

import os
import time

import pytest

from repro.api import CampaignConfig, CampaignSession

WORKERS = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(config: CampaignConfig) -> tuple[float, "object"]:
    t0 = time.perf_counter()
    result = CampaignSession(config).run()
    return time.perf_counter() - t0, result


def test_parallel_speedup_full_campaign():
    serial_s, serial = _timed_run(CampaignConfig(workers=1))
    parallel_s, parallel = _timed_run(CampaignConfig(workers=WORKERS))
    speedup = serial_s / parallel_s
    cores = _available_cores()
    print()
    print(
        f"full campaign ({len(serial.records)} cells): serial {serial_s:.2f}s, "
        f"{WORKERS} workers {parallel_s:.2f}s -> speedup {speedup:.2f}x "
        f"({cores} core(s) available)"
    )
    # Correctness is unconditional: identical records either way.
    assert parallel.records == serial.records
    if cores < WORKERS:
        pytest.skip(
            f"only {cores} core(s) available; recorded speedup {speedup:.2f}x "
            f"but the >1.5x bar needs >={WORKERS} cores"
        )
    assert speedup > 1.5


def test_warm_cache_repeat_campaign_is_free(tmp_path):
    config = CampaignConfig(cache_dir=tmp_path)
    cold_s, cold = _timed_run(config)
    warm_s, warm = _timed_run(config)
    print()
    print(
        f"cold {cold_s:.2f}s ({cold.meta['executed']} executed), "
        f"warm {warm_s:.2f}s ({warm.meta['cache_hits']} cache hits)"
    )
    assert warm.records == cold.records
    assert warm.meta["executed"] == 0  # zero model re-evaluations
    assert warm.meta["cache_hits"] == len(warm.records)
    assert warm_s < cold_s


def test_disabled_telemetry_adds_no_measurable_overhead():
    """The flight recorder's acceptance bar: the instrumented code
    paths must cost nothing when telemetry is off (the default).

    Every instrumentation point is one module-global load plus a
    ``None`` check, so a campaign without telemetry should run at the
    seed engine's speed.  Compare repeated serial sub-campaigns against
    the same campaign with telemetry enabled: the *disabled* path must
    not be measurably slower than the best enabled run (allowing 10%
    scheduler jitter).
    """
    config = CampaignConfig(suites=("micro",), workers=1)
    _timed_run(config)  # warm the suite registry and import machinery
    off = min(_timed_run(config)[0] for _ in range(3))
    on = min(_timed_run(config.with_(telemetry=True))[0] for _ in range(3))
    print()
    print(
        f"micro suite serial: telemetry off {off * 1e3:.1f}ms, "
        f"on {on * 1e3:.1f}ms ({(on / off - 1) * 100:+.1f}%)"
    )
    assert off < on * 1.10, (
        f"disabled telemetry measurably slower than enabled "
        f"({off:.3f}s vs {on:.3f}s)"
    )
