"""Ablation: the compiler flags of Section 2.1.

Checks the semantic content of the paper's flag choices:
* GNU with `-ffast-math` added recovers vectorized FP reductions;
* Fujitsu without `-Kocl` loses its tuned-kernel schedule;
* LLVM below `-O2` loses vectorization entirely;
* `-march=native` (vs. baseline ISA) controls SVE width.
"""

from repro.compilers import parse_flags
from repro.harness import measure_benchmark
from repro.machine import a64fx
from repro.suites import get_benchmark


def _regenerate():
    machine = a64fx()
    out = {}

    dot = get_benchmark("top500.babelstream")
    out["gnu_o3"] = measure_benchmark(
        dot, "GNU", machine, flags=parse_flags(["-O3", "-march=native", "-flto"])
    ).best_s
    out["gnu_fastmath"] = measure_benchmark(
        dot, "GNU", machine, flags=parse_flags(["-O3", "-march=native", "-flto", "-ffast-math"])
    ).best_s

    tuned = get_benchmark("micro.k01")  # vendor-tuned compute stencil
    out["fj_kfast"] = measure_benchmark(
        tuned, "FJtrad", machine, flags=parse_flags(["-Kfast,ocl,largepage,lto"])
    ).best_s
    out["fj_o2"] = measure_benchmark(
        tuned, "FJtrad", machine, flags=parse_flags(["-O2"])
    ).best_s
    stream = get_benchmark("micro.k04")  # vendor-tuned stream triad
    out["fj_stream_ocl"] = measure_benchmark(
        stream, "FJtrad", machine, flags=parse_flags(["-Kfast,ocl,largepage,lto"])
    ).best_s
    out["fj_stream_noocl"] = measure_benchmark(
        stream, "FJtrad", machine, flags=parse_flags(["-Kfast,largepage,lto"])
    ).best_s

    gemm = get_benchmark("polybench.gemm")
    out["llvm_ofast"] = measure_benchmark(
        gemm, "LLVM", machine, flags=parse_flags(["-Ofast", "-ffast-math", "-mcpu=native"])
    ).best_s
    out["llvm_o1"] = measure_benchmark(
        gemm, "LLVM", machine, flags=parse_flags(["-O1", "-mcpu=native"])
    ).best_s
    out["llvm_no_native"] = measure_benchmark(
        gemm, "LLVM", machine, flags=parse_flags(["-Ofast", "-ffast-math"])
    ).best_s
    return out


def test_flag_ablation(benchmark):
    t = benchmark(_regenerate)
    print()
    for k, v in t.items():
        print(f"{k:18s} {v:10.4f} s")

    # fast-math lets GNU vectorize the dot reduction -> faster stream suite
    assert t["gnu_fastmath"] < t["gnu_o3"]
    # -Kfast (SVE + fast-math + tuned schedule) vs a conservative -O2 build
    assert t["fj_o2"] > t["fj_kfast"] * 1.3
    # dropping -Kocl loses the OCL-tuned memory schedule on the
    # co-designed stream kernel (mild but measurable)
    assert t["fj_stream_noocl"] > t["fj_stream_ocl"] * 1.005
    # -O1 disables the vectorizer
    assert t["llvm_o1"] > t["llvm_ofast"] * 1.5
    # baseline NEON instead of SVE-512 costs real performance
    assert t["llvm_no_native"] > t["llvm_ofast"]
