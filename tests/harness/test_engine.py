"""Tests for the parallel campaign engine: cache keys, persistent
caching, journal/resume, and parallel-vs-serial equivalence."""

import json
import os
import subprocess
import sys

import pytest

from repro.compilers.flags import GNU_FLAGS, LLVM_FLAGS
from repro.errors import HarnessError
from repro import telemetry
from repro.harness.engine import (
    CampaignEngine,
    CampaignEvent,
    CampaignJournal,
    CellCache,
    EventKind,
    benchmark_fingerprint,
    cell_cache_key,
)
from repro.harness.results import CampaignResult, RunRecord
from repro.telemetry import SPAN_CELL, Telemetry
from repro.ir import KernelBuilder, Language, read, update
from repro.perf.cost import (
    CompilationCache,
    compilation_cache_key,
    kernel_fingerprint,
)
from repro.suites import get_suite, micro_suite, top500_suite


def _gemm(n: int = 64, name: str = "gemm_fp"):
    b = KernelBuilder(name, Language.C)
    b.array("A", (n, n))
    b.array("B", (n, n))
    b.array("C", (n, n))
    b.nest(
        loops=[("i", n), ("j", n), ("k", n)],
        body=[
            b.stmt(
                update("C", "i", "j"),
                read("A", "i", "k"),
                read("B", "k", "j"),
                fma=1,
                reduction="k",
            )
        ],
    )
    return b.build()


class TestCacheKeys:
    def test_kernel_fingerprint_stable_across_builds(self):
        # Two independently-built identical kernels hash identically
        # (the property that makes the on-disk cache survive restarts).
        assert kernel_fingerprint(_gemm()) == kernel_fingerprint(_gemm())

    def test_kernel_fingerprint_sensitive_to_content(self):
        assert kernel_fingerprint(_gemm(64)) != kernel_fingerprint(_gemm(65))

    def test_compilation_key_varies_inputs(self, a64fx_machine, xeon_machine):
        k = _gemm()
        base = compilation_cache_key("GNU", k, a64fx_machine, GNU_FLAGS)
        assert base == compilation_cache_key("GNU", _gemm(), a64fx_machine, GNU_FLAGS)
        assert base != compilation_cache_key("LLVM", k, a64fx_machine, GNU_FLAGS)
        assert base != compilation_cache_key("GNU", k, a64fx_machine, LLVM_FLAGS)
        assert base != compilation_cache_key("GNU", k, xeon_machine, GNU_FLAGS)

    def test_benchmark_fingerprint_stable(self):
        b1 = micro_suite().benchmarks[0]
        b2 = micro_suite().benchmarks[0]
        assert benchmark_fingerprint(b1) == benchmark_fingerprint(b2)

    def test_cell_key_varies_variant_flags_runs(self, a64fx_machine):
        b = micro_suite().benchmarks[0]
        base = cell_cache_key(b, "GNU", a64fx_machine, None, 10)
        assert base == cell_cache_key(b, "GNU", a64fx_machine, None, 10)
        assert base != cell_cache_key(b, "LLVM", a64fx_machine, None, 10)
        assert base != cell_cache_key(b, "GNU", a64fx_machine, GNU_FLAGS, 10)
        assert base != cell_cache_key(b, "GNU", a64fx_machine, None, 3)

    def test_fingerprints_stable_across_interpreter_invocations(self):
        # Regression: Kernel.features is a frozenset, which iterates in
        # hash order — per-process under hash randomization.  A
        # repr-derived fingerprint therefore changed between interpreter
        # runs, breaking --resume and cross-process cache hits.  Pin
        # stability by recomputing under two different hash seeds.
        prog = (
            "from repro.harness.engine import CampaignEngine, cell_cache_key\n"
            "e = CampaignEngine()\n"
            "t = e.cells()[0]\n"
            "print(e.campaign_fingerprint())\n"
            "print(cell_cache_key(t.benchmark, t.variant, e.machine, e.flags, e.runs))\n"
        )
        outs = set()
        for seed in ("0", "1", "20210907"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            proc = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.add(proc.stdout)
        assert len(outs) == 1, f"fingerprints vary with hash seed: {outs}"


class TestPersistentCompilationCache:
    def test_disk_round_trip(self, a64fx_machine, tmp_path):
        k = _gemm()
        c1 = CompilationCache(persist_dir=tmp_path)
        compiled = c1.get("GNU", k, a64fx_machine, GNU_FLAGS)
        assert c1.compile_count == 1
        # A fresh cache (fresh process in real life) with a *rebuilt*
        # kernel object hits the disk entry instead of recompiling.
        c2 = CompilationCache(persist_dir=tmp_path)
        again = c2.get("GNU", _gemm(), a64fx_machine, GNU_FLAGS)
        assert c2.compile_count == 0 and c2.disk_hits == 1
        assert again.status == compiled.status
        assert [i.applied_passes for i in again.nest_infos] == [
            i.applied_passes for i in compiled.nest_infos
        ]

    def test_corrupt_entry_recompiled(self, a64fx_machine, tmp_path):
        k = _gemm()
        c1 = CompilationCache(persist_dir=tmp_path)
        c1.get("GNU", k, a64fx_machine, GNU_FLAGS)
        for p in tmp_path.glob("*.pkl"):
            p.write_bytes(b"not a pickle")
        c2 = CompilationCache(persist_dir=tmp_path)
        compiled = c2.get("GNU", _gemm(), a64fx_machine, GNU_FLAGS)
        assert c2.compile_count == 1
        assert compiled.ok


class TestEngineSerial:
    def test_workers_one_matches_legacy_loop(self, a64fx_machine):
        # The deprecated shim must keep producing engine-identical records
        # until its 2.0 removal.
        from repro.harness import run_campaign

        benches = micro_suite().benchmarks[:4]
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            legacy = run_campaign(
                a64fx_machine, variants=("FJtrad", "GNU"), benchmarks=benches
            )
        engine = CampaignEngine(
            a64fx_machine, variants=("FJtrad", "GNU"), benchmarks=benches, workers=1
        )
        assert engine.run().records == legacy.records

    def test_invalid_workers(self):
        with pytest.raises(HarnessError):
            CampaignEngine(workers=0)

    def test_event_stream_shape(self, a64fx_machine):
        engine = CampaignEngine(
            a64fx_machine, variants=("GNU",), benchmarks=micro_suite().benchmarks[:3]
        )
        events = []
        engine.run(emit=events.append)
        kinds = [e.kind for e in events]
        assert kinds[0] is EventKind.CAMPAIGN_STARTED
        assert kinds[-1] is EventKind.CAMPAIGN_FINISHED
        assert kinds.count(EventKind.CELL_STARTED) == 3
        finished = [
            e for e in events
            if e.kind in (EventKind.CELL_FINISHED, EventKind.CELL_FAILED)
        ]
        assert len(finished) == 3  # k03 is a GNU runtime-fault cell
        assert all(e.record is not None for e in finished)
        assert finished[-1].completed == 3 and finished[-1].total == 3
        # ETA is populated once at least one cell completed.
        assert any(e.eta_s is not None for e in events)

    def test_failure_cells_emit_cell_failed(self, a64fx_machine):
        # micro.k22 is a compile-error cell under FJclang (Figure 2).
        engine = CampaignEngine(
            a64fx_machine, variants=("FJclang",),
            benchmarks=(micro_suite().get("k22"),),
        )
        events = []
        result = engine.run(emit=events.append)
        assert any(e.kind is EventKind.CELL_FAILED for e in events)
        assert not result.get("micro.k22", "FJclang").valid


class TestCellCacheAndWarmRuns:
    def test_warm_cache_zero_reevaluations(self, a64fx_machine, tmp_path, monkeypatch):
        benches = top500_suite().benchmarks
        cold = CampaignEngine(
            a64fx_machine, benchmarks=benches, cache_dir=tmp_path
        ).run()
        assert cold.meta["cache_hits"] == 0
        assert cold.meta["executed"] == len(cold.records)
        # The warm run must never reach the model: make measure_benchmark
        # explode if it does.
        def boom(*a, **k):
            raise AssertionError("model re-evaluated on a warm cache")

        monkeypatch.setattr("repro.harness.runner.measure_benchmark", boom)
        warm = CampaignEngine(
            a64fx_machine, benchmarks=benches, cache_dir=tmp_path
        ).run()
        assert warm.meta["cache_hits"] == len(warm.records)
        assert warm.meta["executed"] == 0
        assert warm.records == cold.records

    def test_flag_change_invalidates_cells(self, a64fx_machine, tmp_path):
        benches = micro_suite().benchmarks[:2]
        CampaignEngine(
            a64fx_machine, variants=("GNU",), benchmarks=benches, cache_dir=tmp_path
        ).run()
        ablation = CampaignEngine(
            a64fx_machine, variants=("GNU",), benchmarks=benches,
            flags=GNU_FLAGS.with_(fast_math=True), cache_dir=tmp_path,
        ).run()
        assert ablation.meta["cache_hits"] == 0  # different content key

    def test_cell_cache_unreadable_entry_ignored(self, tmp_path):
        cache = CellCache(tmp_path)
        rec = RunRecord("s.b", "s", "GNU", 1, 1, (1.0,))
        cache.put("k1", rec)
        assert cache.get("k1") == rec
        (tmp_path / "k2.json").write_text("{broken")
        assert cache.get("k2") is None
        assert cache.get("missing") is None


class _StopRun(Exception):
    pass


class TestJournalResume:
    def _engine(self, machine, tmp_path, **kw):
        return CampaignEngine(
            machine,
            variants=("FJtrad", "GNU"),
            benchmarks=top500_suite().benchmarks + micro_suite().benchmarks[:5],
            cache_dir=tmp_path,
            **kw,
        )

    def test_resume_after_kill_replays_journal(self, a64fx_machine, tmp_path, monkeypatch):
        # Kill the campaign after 6 completed cells...
        count = [0]

        def killer(event):
            if event.kind in (EventKind.CELL_FINISHED, EventKind.CELL_FAILED):
                count[0] += 1
                if count[0] >= 6:
                    raise _StopRun()

        with pytest.raises(_StopRun):
            self._engine(a64fx_machine, tmp_path).run(emit=killer)
        # ...wipe the cell cache so only the journal can restore them...
        for p in (tmp_path / "cells").glob("*.json"):
            p.unlink()
        # ...and resume: the 6 journaled cells are replayed, not re-run.
        calls = []
        import repro.harness.runner as runner_mod

        real = runner_mod.measure_benchmark

        def counting(*args, **kwargs):
            calls.append(args[0].full_name)
            return real(*args, **kwargs)

        monkeypatch.setattr("repro.harness.runner.measure_benchmark", counting)
        resumed = self._engine(a64fx_machine, tmp_path, resume=True).run()
        assert resumed.meta["resumed"] == 6
        total = len(resumed.records)
        assert len(calls) == total - 6
        # The final result is identical to an uninterrupted run.
        fresh = CampaignEngine(
            a64fx_machine,
            variants=("FJtrad", "GNU"),
            benchmarks=top500_suite().benchmarks + micro_suite().benchmarks[:5],
        ).run()
        assert resumed.records == fresh.records

    def test_resume_rejects_foreign_journal(self, a64fx_machine, tmp_path):
        self._engine(a64fx_machine, tmp_path).run()
        other = CampaignEngine(
            a64fx_machine, variants=("LLVM",),
            benchmarks=micro_suite().benchmarks[:1],
            cache_dir=tmp_path, resume=True,
        )
        with pytest.raises(HarnessError, match="different campaign"):
            other.run()

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.start("fp", "A64FX", [("s.b", "GNU")])
        journal.append(RunRecord("s.b", "s", "GNU", 1, 1, (1.0,)))
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"kind": "cell", "record": {"benchm')  # killed mid-write
        loaded = CampaignJournal(journal.path).load()
        assert loaded is not None
        header, records, finished = loaded
        assert header["fingerprint"] == "fp"
        assert len(records) == 1 and not finished

    def test_no_journal_means_fresh_run(self, a64fx_machine, tmp_path):
        engine = CampaignEngine(
            a64fx_machine, variants=("GNU",),
            benchmarks=micro_suite().benchmarks[:2],
            cache_dir=tmp_path, resume=True,
        )
        result = engine.run()  # resume requested, nothing to resume from
        assert result.meta["resumed"] == 0
        assert len(result.records) == 2


class TestParallelEquivalence:
    """The acceptance check: workers=N matches workers=1 exactly."""

    def test_workers4_equals_workers1_two_suites(self, a64fx_machine):
        benches = [b for s in (get_suite("top500"), get_suite("micro")) for b in s.benchmarks]
        serial = CampaignEngine(
            a64fx_machine, benchmarks=benches, workers=1
        ).run()
        parallel = CampaignEngine(
            a64fx_machine, benchmarks=benches, workers=4
        ).run()
        assert parallel.records == serial.records
        assert parallel.machine == serial.machine
        assert list(parallel.records) == list(serial.records)  # canonical order

    def test_parallel_with_persistent_cache(self, a64fx_machine, tmp_path):
        benches = micro_suite().benchmarks[:6]
        parallel = CampaignEngine(
            a64fx_machine, variants=("GNU", "LLVM"), benchmarks=benches,
            workers=3, cache_dir=tmp_path,
        ).run()
        assert (tmp_path / "kernels").exists()
        assert len(list((tmp_path / "cells").glob("*.json"))) == len(parallel.records)
        serial = CampaignEngine(
            a64fx_machine, variants=("GNU", "LLVM"), benchmarks=benches, workers=1
        ).run()
        assert parallel.records == serial.records


class TestEventFormatting:
    """Satellite: CampaignEvent.__str__ stable widths and cache status."""

    def _line(self, **kw):
        defaults = dict(kind=EventKind.CELL_FINISHED, benchmark="micro.k01",
                        variant="GNU", completed=3, total=44, elapsed_s=1.5)
        defaults.update(kw)
        return str(CampaignEvent(**defaults))

    def test_prefix_width_is_stable(self):
        short = self._line(completed=3, elapsed_s=1.5)
        long = self._line(completed=1234, total=9999, elapsed_s=12345.67)
        cut = len("[9999/9999] 12345.67s ")
        assert len(short[:cut]) == len(long[:cut]) == cut
        # Kind column is padded so the cell name starts at a fixed offset.
        assert short[:cut].endswith("s ")
        assert short[cut:].startswith("cell-finished")
        assert long[cut:].startswith("cell-finished")
        assert short.index("micro.k01") == long.index("micro.k01")

    def test_cache_hit_marks_cached(self):
        line = self._line(kind=EventKind.CACHE_HIT, from_cache=True)
        assert "[cached]" in line
        assert "[cached]" not in self._line()

    def test_eta_and_message_render(self):
        line = self._line(eta_s=12.3, message="runtime error")
        assert "eta=   12.3s" in line
        assert line.endswith("runtime error")


class TestCellCacheCorruption:
    """Satellite: corrupt cache entries become misses, not crashes."""

    def _put(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("good", RunRecord("s.b", "s", "GNU", 1, 1, (1.0,)))
        return cache

    def test_truncated_json_deleted_and_counted(self, tmp_path):
        cache = self._put(tmp_path)
        (tmp_path / "trunc.json").write_text('{"key": "trunc", "record": {"ben')
        tel = Telemetry()
        with telemetry.active(tel):
            assert cache.get("trunc") is None
        assert not (tmp_path / "trunc.json").exists()  # dropped
        assert tel.metrics.counter_value("cell_cache.corrupt") == 1
        assert tel.metrics.counter_value("cell_cache.miss") == 1

    def test_valid_json_missing_runs_is_corrupt(self, tmp_path):
        cache = self._put(tmp_path)
        (tmp_path / "norun.json").write_text(
            json.dumps({"key": "norun", "record": {"benchmark": "s.b"}})
        )
        tel = Telemetry()
        with telemetry.active(tel):
            assert cache.get("norun") is None
        assert not (tmp_path / "norun.json").exists()
        assert tel.metrics.counter_value("cell_cache.corrupt") == 1

    def test_hit_miss_put_counters(self, tmp_path):
        tel = Telemetry()
        with telemetry.active(tel):
            cache = self._put(tmp_path)
            assert cache.get("good") is not None
            assert cache.get("absent") is None
        assert tel.metrics.counter_value("cell_cache.put") == 1
        assert tel.metrics.counter_value("cell_cache.hit") == 1
        assert tel.metrics.counter_value("cell_cache.miss") == 1
        assert tel.metrics.counter_value("cell_cache.corrupt") == 0

    def test_corruption_survives_into_campaign(self, a64fx_machine, tmp_path):
        benches = micro_suite().benchmarks[:2]
        args = dict(variants=("GNU",), benchmarks=benches, cache_dir=tmp_path)
        CampaignEngine(a64fx_machine, **args).run()
        entries = sorted((tmp_path / "cells").glob("*.json"))
        assert len(entries) == 2
        entries[0].write_text("{broken")  # disk rot on one entry
        rerun = CampaignEngine(a64fx_machine, **args).run()
        assert rerun.meta["cache_hits"] == 1
        assert rerun.meta["executed"] == 1  # re-ran only the corrupt cell
        assert len(rerun.records) == 2


class TestJournalReplayEvents:
    """Satellite: _replay_journal emits the documented event sequence."""

    def test_resumed_cells_emit_cache_hits_in_canonical_order(
        self, a64fx_machine, tmp_path, monkeypatch
    ):
        benches = micro_suite().benchmarks[:3]
        args = dict(variants=("GNU", "LLVM"), benchmarks=benches,
                    cache_dir=tmp_path)
        first = CampaignEngine(a64fx_machine, **args).run()
        # Pretend the run was interrupted: reopen the journal (drop the
        # "finished" marker) and wipe the cell cache so only the journal
        # can restore the cells.
        journal_path = tmp_path / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "done"
        journal_path.write_text("\n".join(lines[:-1]) + "\n")
        for p in (tmp_path / "cells").glob("*.json"):
            p.unlink()

        events = []
        resumed = CampaignEngine(a64fx_machine, resume=True, **args).run(
            emit=events.append
        )
        assert resumed.records == first.records

        kinds = [e.kind for e in events]
        n = len(first.records)
        assert kinds[0] == EventKind.CAMPAIGN_STARTED
        assert kinds[1:1 + n] == [EventKind.CACHE_HIT] * n
        assert kinds[-1] == EventKind.CAMPAIGN_FINISHED
        replayed = events[1:1 + n]
        assert all(e.from_cache for e in replayed)
        assert all(e.message == "resumed from journal" for e in replayed)
        # Replay follows the canonical (benchmark-major) cell order and
        # keeps the completed counter monotone.
        assert [(e.benchmark, e.variant) for e in replayed] == list(first.records)
        assert [e.completed for e in replayed] == list(range(1, n + 1))
        assert all(e.total == n for e in events)

    def test_fresh_run_emits_no_replay_events(self, a64fx_machine, tmp_path):
        events = []
        CampaignEngine(
            a64fx_machine, variants=("GNU",),
            benchmarks=micro_suite().benchmarks[:1],
            cache_dir=tmp_path, resume=True,
        ).run(emit=events.append)
        assert not any(e.message == "resumed from journal" for e in events)


class TestTelemetryMergeAcrossWorkers:
    """Satellite: workers=4 and workers=1 agree on every deterministic
    metric total; only timings may differ."""

    _DETERMINISTIC = (
        "engine.cells_executed",
        "runner.cells",
        "runner.perf_runs",
        "runner.failed_cells",
    )

    def _run(self, machine, workers):
        tel = Telemetry()
        benches = micro_suite().benchmarks[:4]
        result = CampaignEngine(
            machine, variants=("GNU", "LLVM"), benchmarks=benches,
            workers=workers, telemetry=tel,
        ).run()
        return tel, result

    def test_metric_totals_identical(self, a64fx_machine):
        serial_tel, serial = self._run(a64fx_machine, workers=1)
        parallel_tel, parallel = self._run(a64fx_machine, workers=4)
        assert parallel.records == serial.records
        for name in self._DETERMINISTIC:
            assert parallel_tel.metrics.counter_value(name) == \
                serial_tel.metrics.counter_value(name), name
        # Same span population (counts per name), wherever recorded.
        def span_counts(tel):
            counts = {}
            for s in tel.spans:
                counts[s.name] = counts.get(s.name, 0) + 1
            return counts
        assert span_counts(parallel_tel) == span_counts(serial_tel)
        # Histogram sample counts match too (the sampled values differ).
        hist = "engine.cell_s"
        assert parallel_tel.metrics.histograms[hist].count == \
            serial_tel.metrics.histograms[hist].count

    def test_parallel_spans_come_from_worker_processes(self, a64fx_machine):
        tel, _ = self._run(a64fx_machine, workers=4)
        pids = {s.pid for s in tel.spans}
        assert len(pids) > 1  # campaign span + at least one worker pid
        root = next(s for s in tel.spans if s.name == "campaign")
        cells = [s for s in tel.spans if s.name == SPAN_CELL]
        assert cells
        assert all(s.parent_id == root.span_id for s in cells)


class TestResultTelemetryBlock:
    """CampaignResult carries (and round-trips) the flight recorder."""

    def test_engine_attaches_block_when_enabled(self, a64fx_machine):
        tel = Telemetry()
        result = CampaignEngine(
            a64fx_machine, variants=("GNU",),
            benchmarks=micro_suite().benchmarks[:2], telemetry=tel,
        ).run()
        assert result.telemetry
        summary = result.telemetry["summary"]
        assert summary["cells_traced"] == 2
        assert 0.0 < summary["parallel_efficiency"] <= 1.0
        counters = result.telemetry["metrics"]["counters"]
        assert counters["engine.cells_executed"] == 2

    def test_disabled_by_default(self, a64fx_machine):
        result = CampaignEngine(
            a64fx_machine, variants=("GNU",),
            benchmarks=micro_suite().benchmarks[:1],
        ).run()
        assert result.telemetry == {}

    def test_round_trip_and_legacy_files(self, tmp_path):
        result = CampaignResult(machine="A64FX")
        result.add(RunRecord("s.b", "s", "GNU", 1, 1, (1.0,)))
        result.telemetry = {"metrics": {"counters": {"x": 1}},
                            "summary": {"wall_s": 2.0}}
        path = tmp_path / "result.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.telemetry == result.telemetry
        # A v2 file without the block (older writer) loads with {}.
        doc = json.loads(path.read_text())
        del doc["telemetry"]
        path.write_text(json.dumps(doc))
        assert CampaignResult.load(path).telemetry == {}
