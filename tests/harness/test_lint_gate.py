"""Tests for the campaign lint gate: policy validation, cell skipping,
finding attachment, events, cache-key handling, and JSON round-trips."""

import pytest

from repro.api import CampaignConfig, CampaignSession
from repro.errors import HarnessError
from repro.harness.engine import (
    LINT_ERROR,
    LINT_OFF,
    LINT_WARN,
    CampaignEngine,
    EventKind,
    cell_cache_key,
)
from repro.harness.results import STATUS_LINT_ERROR, CampaignResult
from repro.ir import KernelBuilder, Language, read, update, write
from repro.machine import a64fx
from repro.suites.base import Benchmark, ParallelKind, WorkUnit


def _racy_benchmark(name="racer"):
    b = KernelBuilder(f"{name}_kernel", Language.C)
    b.array("a", (256,))
    b.nest(
        [("i", 1, 256)],
        [b.stmt(write("a", "i"), read("a", "i-1"), fadd=1)],
        parallel=("i",),
    )
    return Benchmark(
        name=name,
        suite="fixture",
        language=Language.C,
        units=(WorkUnit(kernel=b.build()),),
        parallel=ParallelKind.OPENMP,
    )


def _clean_benchmark(name="clean"):
    b = KernelBuilder(f"{name}_kernel", Language.C)
    b.array("y", (256,))
    b.array("x", (256,))
    b.nest(
        [("i", 256)],
        [b.stmt(update("y", "i"), read("x", "i"), fma=1)],
        parallel=("i",),
    )
    return Benchmark(
        name=name,
        suite="fixture",
        language=Language.C,
        units=(WorkUnit(kernel=b.build()),),
        parallel=ParallelKind.OPENMP,
    )


def _engine(benchmarks, policy, **kw):
    return CampaignEngine(
        a64fx(),
        benchmarks=tuple(benchmarks),
        variants=("GNU",),
        lint_policy=policy,
        **kw,
    )


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(HarnessError, match="lint"):
            _engine((_clean_benchmark(),), "strict")

    def test_config_passes_policy_through(self):
        session = CampaignSession(CampaignConfig(lint_policy="warn"))
        assert session.engine().lint_policy == LINT_WARN


class TestErrorPolicy:
    def test_defective_cell_skipped_with_findings(self):
        result = _engine((_racy_benchmark(),), LINT_ERROR).run()
        record = result.get("fixture.racer", "GNU")
        assert record.status == STATUS_LINT_ERROR
        assert not record.valid
        assert record.runs == ()
        assert any(d.rule_id == "RACE001" for d in record.lint)
        assert result.meta["lint_policy"] == LINT_ERROR
        assert result.meta["lint_skipped"] == 1

    def test_clean_cell_still_runs(self):
        result = _engine(
            (_racy_benchmark(), _clean_benchmark()), LINT_ERROR
        ).run()
        clean = result.get("fixture.clean", "GNU")
        assert clean.valid and clean.runs
        racy = result.get("fixture.racer", "GNU")
        assert racy.status == STATUS_LINT_ERROR

    def test_lint_failed_event_emitted(self):
        events = []
        _engine((_racy_benchmark(),), LINT_ERROR).run(emit=events.append)
        kinds = [e.kind for e in events]
        assert EventKind.CELL_LINT_FAILED in kinds
        assert EventKind.CELL_FINISHED not in kinds

    def test_roundtrip_preserves_status_and_findings(self):
        result = _engine((_racy_benchmark(),), LINT_ERROR).run()
        loaded = CampaignResult.from_json(result.to_json())
        record = loaded.get("fixture.racer", "GNU")
        assert record.status == STATUS_LINT_ERROR
        assert record.lint == result.get("fixture.racer", "GNU").lint


class TestWarnPolicy:
    def test_defective_cell_runs_with_findings_attached(self):
        result = _engine((_racy_benchmark(),), LINT_WARN).run()
        record = result.get("fixture.racer", "GNU")
        assert record.valid and record.runs
        assert any(d.rule_id == "RACE001" for d in record.lint)
        assert result.meta["lint_skipped"] == 0


class TestOffPolicy:
    def test_no_findings_attached(self):
        result = _engine((_racy_benchmark(),), LINT_OFF).run()
        record = result.get("fixture.racer", "GNU")
        assert record.valid
        assert record.lint == ()


class TestCacheKeys:
    def test_off_policy_keeps_legacy_keys(self):
        # lint_policy="off" must not perturb pre-existing cache keys.
        bench, machine = _clean_benchmark(), a64fx()
        base = cell_cache_key(bench, "GNU", machine, None, 10)
        assert cell_cache_key(
            bench, "GNU", machine, None, 10, lint_policy=LINT_OFF
        ) == base

    def test_policies_get_distinct_keys(self):
        bench, machine = _clean_benchmark(), a64fx()
        keys = {
            cell_cache_key(bench, "GNU", machine, None, 10, lint_policy=p)
            for p in (LINT_OFF, LINT_WARN, LINT_ERROR)
        }
        assert len(keys) == 3

    def test_fingerprint_stable_when_off(self):
        bench = _clean_benchmark()
        off = _engine((bench,), LINT_OFF).campaign_fingerprint()
        error = _engine((bench,), LINT_ERROR).campaign_fingerprint()
        assert off != error
        assert off == _engine((bench,), LINT_OFF).campaign_fingerprint()
