"""Tests for results records, exploration, and the performance runner."""

import pytest

from repro.api import CampaignConfig, CampaignSession, EventKind
from repro.harness import (
    EXPLORATION_TRIALS,
    PERFORMANCE_RUNS,
    STATUS_COMPILE_ERROR,
    STATUS_OK,
    STATUS_RUNTIME_ERROR,
    CampaignResult,
    RunRecord,
    explore,
    measure_benchmark,
    placement_candidates,
)
from repro.errors import AnalysisError, HarnessError
from repro.machine import Placement
from repro.suites import get_benchmark, micro_suite, polybench_suite


class TestRunRecord:
    def _rec(self, runs=(1.2, 1.1, 1.3), status=STATUS_OK):
        return RunRecord(
            benchmark="s.b", suite="s", variant="LLVM", ranks=4, threads=12,
            runs=runs, status=status,
        )

    def test_best_is_fastest(self):
        assert self._rec().best_s == 1.1

    def test_failure_is_infinite(self):
        rec = self._rec(runs=(), status=STATUS_RUNTIME_ERROR)
        assert not rec.valid
        assert rec.best_s == float("inf")

    def test_cv(self):
        rec = self._rec(runs=(1.0, 1.0, 1.0))
        assert rec.cv == 0.0
        assert self._rec().cv > 0

    def test_placement_roundtrip(self):
        assert self._rec().placement == Placement(4, 12)


class TestCampaignResult:
    def test_duplicate_rejected(self):
        result = CampaignResult(machine="A64FX")
        rec = RunRecord("s.b", "s", "LLVM", 1, 1, (1.0,))
        result.add(rec)
        with pytest.raises(HarnessError):
            result.add(rec)

    def test_missing_lookup_raises(self):
        with pytest.raises(AnalysisError):
            CampaignResult(machine="A64FX").get("s.b", "LLVM")

    def test_json_roundtrip(self, tmp_path):
        result = CampaignResult(machine="A64FX")
        result.add(RunRecord("s.b", "s", "LLVM", 4, 12, (1.0, 1.5), exploration=((1, 1, 2.0),)))
        result.add(RunRecord("s.b", "s", "GNU", 1, 48, (), status=STATUS_RUNTIME_ERROR))
        path = tmp_path / "r.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.machine == "A64FX"
        assert loaded.get("s.b", "LLVM").best_s == 1.0
        assert loaded.get("s.b", "LLVM").exploration == ((1, 1, 2.0),)
        assert not loaded.get("s.b", "GNU").valid

    def test_benchmarks_and_variants(self):
        result = CampaignResult(machine="m")
        result.add(RunRecord("s.a", "s", "LLVM", 1, 1, (1.0,)))
        result.add(RunRecord("s.a", "s", "GNU", 1, 1, (1.0,)))
        result.add(RunRecord("s.b", "s", "LLVM", 1, 1, (1.0,)))
        assert result.benchmarks() == ("s.a", "s.b")
        assert result.variants() == ("LLVM", "GNU")


class TestPlacementCandidates:
    def test_pinned_single_core(self, a64fx_machine):
        b = polybench_suite().get("mvt")
        assert placement_candidates(b, a64fx_machine) == (Placement(1, 1),)

    def test_openmp_sweeps_threads(self, a64fx_machine):
        b = micro_suite().get("k04")
        cands = placement_candidates(b, a64fx_machine)
        assert all(p.ranks == 1 for p in cands)
        assert Placement(1, 12) in cands
        assert Placement(1, 48) in cands

    def test_weak_scaling_uses_recommended(self, a64fx_machine):
        b = get_benchmark("ecp.xsbench")
        assert placement_candidates(b, a64fx_machine) == (Placement(4, 12),)

    def test_pow2_ranks_respected(self, a64fx_machine):
        b = get_benchmark("ecp.swfft")
        for p in placement_candidates(b, a64fx_machine):
            assert p.ranks & (p.ranks - 1) == 0

    def test_mpi_openmp_grid(self, a64fx_machine):
        b = get_benchmark("ecp.amg")
        cands = placement_candidates(b, a64fx_machine)
        assert Placement(4, 12) in cands
        assert len(cands) > 5


class TestExploration:
    def test_explore_returns_winner_and_log(self, a64fx_machine):
        b = micro_suite().get("k04")
        placement, log, model = explore(b, "FJtrad", a64fx_machine)
        assert model.valid
        assert len(log) >= 3
        assert all(len(entry) == 3 for entry in log)
        # the winner's logged trial is the minimum
        best = min(t for _, _, t in log)
        assert (placement.ranks, placement.threads) in {(r, t) for r, t, tt in log}

    def test_explore_is_deterministic(self, a64fx_machine):
        b = micro_suite().get("k04")
        p1, log1, _ = explore(b, "LLVM", a64fx_machine)
        p2, log2, _ = explore(b, "LLVM", a64fx_machine)
        assert p1 == p2 and log1 == log2

    def test_per_compiler_exploration_can_differ(self, a64fx_machine):
        # Sec. 2.4: the final setting is individual per compiler.
        b = get_benchmark("spec_omp.358.botsalgn")
        pg, _, _ = explore(b, "GNU", a64fx_machine)
        pf, _, _ = explore(b, "FJtrad", a64fx_machine)
        # both valid placements, possibly different; just check types
        assert pg.fits(a64fx_machine.topology) and pf.fits(a64fx_machine.topology)


class TestExplorationFailedBuild:
    """Regression: explore() on a failed build used to return
    machine.recommended_placement() unconditionally — handing pinned and
    OpenMP-only codes a 4x12 MPI placement they cannot legally run."""

    def _pinned_failing_bench(self):
        # micro.k22's kernel is in FJclang's compile-error table; rebuild
        # it as a PolyBench-style pinned serial benchmark.
        from dataclasses import replace

        from repro.suites.base import ParallelKind

        k22 = micro_suite().get("k22")
        return replace(
            k22,
            name="k22_pinned",
            suite="micro",
            parallel=ParallelKind.SERIAL,
            pinned_single_core=True,
        )

    def test_failed_build_returns_first_legal_candidate(self, a64fx_machine):
        b = self._pinned_failing_bench()
        placement, log, model = explore(b, "FJclang", a64fx_machine)
        assert not model.valid
        assert log == ()
        assert placement == placement_candidates(b, a64fx_machine)[0]
        # the old behaviour handed back the 4x12 recommended placement
        assert placement != a64fx_machine.recommended_placement()

    def test_failed_build_pinned_stays_single_core(self, a64fx_machine):
        placement, _, _ = explore(
            self._pinned_failing_bench(), "FJclang", a64fx_machine
        )
        assert placement == Placement(1, 1)

    def test_failed_build_openmp_keeps_one_rank(self, a64fx_machine):
        b = micro_suite().get("k22")  # OpenMP-only, FJclang can't build it
        placement, _, model = explore(b, "FJclang", a64fx_machine)
        assert not model.valid
        assert placement.ranks == 1
        assert placement == placement_candidates(b, a64fx_machine)[0]

    def test_pinned_never_multi_core_on_any_path(self, a64fx_machine):
        # Sweeps every variant of a pinned benchmark, working builds and
        # failing ones alike: the result must always be one core.
        from repro.compilers import STUDY_VARIANTS

        benches = [polybench_suite().get("mvt"), self._pinned_failing_bench()]
        for b in benches:
            for variant in STUDY_VARIANTS:
                placement, _, _ = explore(b, variant, a64fx_machine)
                assert placement.total_cores_used == 1, (b.full_name, variant)


class TestExplorationShim:
    """explore() is a shim over repro.tuning's grid strategy; its winners
    are a compatibility contract, bit-identical to the historical loop."""

    @staticmethod
    def _reference_explore(bench, variant, machine):
        """The pre-tuner inline sweep, re-implemented independently."""
        from repro.perf.batch import evaluate_placements
        from repro.perf.noise import noise_multiplier

        candidates = placement_candidates(bench, machine)
        models = evaluate_placements(bench, variant, machine, candidates)
        if not models[0].valid:
            return candidates[0], (), models[0]
        best_i, best_s = -1, float("inf")
        log = []
        for i, (p, m) in enumerate(zip(candidates, models)):
            score = min(
                m.time_s
                * noise_multiplier(
                    bench.noise_cv,
                    "explore",
                    bench.full_name,
                    variant,
                    str(p),
                    trial,
                )
                for trial in range(EXPLORATION_TRIALS)
            )
            log.append((p.ranks, p.threads, score))
            if score < best_s:
                best_s, best_i = score, i
        return candidates[best_i], tuple(log), models[best_i]

    def test_bit_identical_winners_for_every_benchmark(self, a64fx_machine):
        from repro.suites import all_benchmarks

        for bench in all_benchmarks():
            for variant in ("GNU", "FJtrad"):
                got = explore(bench, variant, a64fx_machine)
                want = self._reference_explore(bench, variant, a64fx_machine)
                assert got[0] == want[0], (bench.full_name, variant)
                assert got[1] == want[1], (bench.full_name, variant)
                assert got[2].time_s == want[2].time_s

    def test_exact_ties_resolve_to_first_candidate(self, a64fx_machine):
        # zero noise and a flat landscape: every candidate scores the
        # model time; first-wins strict-< must pick the first candidate
        from repro.tuning import placement_space, GridStrategy

        space = placement_space(
            (Placement(1, 1), Placement(1, 2), Placement(1, 4))
        )
        gen = GridStrategy(trials=EXPLORATION_TRIALS).run(space)
        batch = next(gen)
        try:
            gen.send((1.0,) * len(batch))
        except StopIteration as stop:
            winner = stop.value
        assert winner is batch[0]


class TestRunner:
    def test_ten_runs_recorded(self, a64fx_machine):
        b = polybench_suite().get("gemm")
        rec = measure_benchmark(b, "LLVM", a64fx_machine)
        assert len(rec.runs) == PERFORMANCE_RUNS == 10
        assert rec.status == STATUS_OK
        assert rec.best_s <= min(rec.runs) + 1e-12

    def test_compile_error_recorded(self, a64fx_machine):
        b = micro_suite().get("k22")
        rec = measure_benchmark(b, "FJclang", a64fx_machine)
        assert rec.status == STATUS_COMPILE_ERROR
        assert rec.runs == ()

    def test_runtime_fault_recorded(self, a64fx_machine):
        b = micro_suite().get("k03")
        rec = measure_benchmark(b, "GNU", a64fx_machine)
        assert rec.status == STATUS_RUNTIME_ERROR

    def test_noise_makes_runs_differ(self, a64fx_machine):
        b = get_benchmark("top500.babelstream")
        rec = measure_benchmark(b, "LLVM", a64fx_machine)
        assert len(set(rec.runs)) > 1

    def test_runner_deterministic(self, a64fx_machine):
        b = polybench_suite().get("gemm")
        r1 = measure_benchmark(b, "GNU", a64fx_machine)
        r2 = measure_benchmark(b, "GNU", a64fx_machine)
        assert r1.runs == r2.runs


class TestCampaignDriver:
    def test_restricted_campaign(self, a64fx_machine):
        names = tuple(b.full_name for b in micro_suite().benchmarks[:3])
        session = CampaignSession(
            CampaignConfig(
                machine=a64fx_machine, variants=("FJtrad", "GNU"), benchmarks=names
            )
        )
        result = session.run()
        assert len(result.records) == 6
        assert result.machine == "A64FX"

    def test_progress_events(self, a64fx_machine):
        seen = []
        names = tuple(b.full_name for b in micro_suite().benchmarks[:2])
        session = CampaignSession(
            CampaignConfig(machine=a64fx_machine, variants=("FJtrad",), benchmarks=names)
        )

        @session.subscribe
        def on_event(event):
            if event.kind is EventKind.CELL_STARTED:
                seen.append((event.benchmark, event.variant))

        session.run()
        assert len(seen) == 2
