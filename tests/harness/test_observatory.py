"""Tests for the campaign observatory's read side: ``campaign_status``
over live sharded journals, the campaign doctor over chaos journals,
and the ``status`` / ``doctor`` CLI subcommands."""

import json

import pytest

from repro.cli import main as cli_main
from repro.faults import FaultPlan, FaultRule
from repro.harness.engine import CampaignEngine
from repro.harness.observatory import (
    CLUSTER_MIN,
    DoctorFinding,
    DoctorReport,
    _cell_group,
    campaign_status,
    diagnose,
    doctor_from_cache_dir,
    render_doctor,
    render_status,
)
from repro.harness.results import STATUS_COMPILE_ERROR, STATUS_OK, RunRecord
from repro.suites import get_suite, micro_suite
from repro.telemetry import Telemetry
from repro.telemetry.history import HistorySample


def _engine(machine, **kwargs):
    kwargs.setdefault("suites", (get_suite("micro"),))
    kwargs.setdefault("variants", ("GNU", "LLVM"))
    kwargs.setdefault("retry_backoff_s", 0.0)
    return CampaignEngine(machine, **kwargs)


def _record(name="micro.k01", variant="GNU", status=STATUS_OK):
    return RunRecord(
        benchmark=name, suite=name.split(".", 1)[0], variant=variant,
        ranks=1, threads=48,
        runs=(0.1,) * 3 if status == STATUS_OK else (),
        status=status,
    )


def _sample(t=1.0, completed=1, total=4, **kw):
    defaults = dict(
        t=t, elapsed_s=t, completed=completed, total=total,
        executed=completed, cache_hits=0, resumed=0, failures=0,
        retried=0, throughput_cps=completed / t, eta_s=None,
        cache_hit_rate=None,
    )
    defaults.update(kw)
    return HistorySample(**defaults)


CELLS = len(micro_suite().benchmarks) * 2  # two variants


# -- campaign status -------------------------------------------------------


class TestCampaignStatus:
    def test_none_without_journals(self, tmp_path):
        assert campaign_status(tmp_path) is None

    def test_mid_run_sharded_campaign(self, a64fx_machine, tmp_path):
        _engine(a64fx_machine, shard=(1, 2), cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        status = campaign_status(tmp_path)
        assert status is not None
        assert not status.complete
        assert status.total == CELLS
        assert 0 < status.completed < CELLS
        # Shard 1's journal is the only one; it finished its slice.
        (shard,) = status.shards
        assert shard.shard == (1, 2)
        assert shard.finished
        assert shard.completed == shard.assigned == status.completed
        # Rates come from the shard's metrics history.
        assert status.throughput_cps is not None
        assert status.throughput_cps > 0
        assert shard.throughput_cps == status.throughput_cps
        # The missing half belongs to a shard that never journaled, so
        # no unfinished shard contributes capacity: no ETA claim.
        assert status.eta_s is None

        text = render_status(status)
        assert "[in progress]" in text
        assert f"missing: {CELLS - status.completed} cell(s)" in text
        assert "shard   1/2" in text

    def test_completed_campaign(self, a64fx_machine, tmp_path):
        for index in (1, 2):
            _engine(a64fx_machine, shard=(index, 2), cache_dir=tmp_path,
                    telemetry=Telemetry()).run()
        status = campaign_status(tmp_path)
        assert status is not None
        assert status.complete
        assert status.completed == status.total == CELLS
        assert len(status.shards) == 2
        assert all(sp.finished for sp in status.shards)
        assert status.executed == CELLS
        assert "[complete]" in render_status(status)

    def test_resumed_run_reports_cache_hits(self, a64fx_machine, tmp_path):
        _engine(a64fx_machine, cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        _engine(a64fx_machine, cache_dir=tmp_path,
                telemetry=Telemetry()).run()  # all cells resume
        status = campaign_status(tmp_path)
        assert status is not None
        assert status.cache_hit_rate == pytest.approx(1.0)
        assert "cache-hit rate 100.0%" in render_status(status)

    def test_status_without_history_degrades(self, a64fx_machine, tmp_path):
        _engine(a64fx_machine, cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        for path in tmp_path.glob("history*.jsonl"):
            path.unlink()
        status = campaign_status(tmp_path)
        assert status is not None
        assert status.complete
        assert status.throughput_cps is None
        assert status.eta_s is None
        assert status.cache_hit_rate is None
        assert "no metrics history found" in render_status(status)


# -- the doctor: unit ------------------------------------------------------


class TestCellGroup:
    def test_suite_and_variant(self):
        assert _cell_group("polybench.2mm/GNU") == ("polybench", "GNU")

    def test_bare_benchmark(self):
        assert _cell_group("standalone/LLVM") == ("standalone", "LLVM")

    def test_no_variant_is_not_a_cell(self):
        assert _cell_group("not-a-cell") is None


class TestDiagnose:
    def test_healthy_campaign(self):
        report = diagnose([_record()])
        (finding,) = report.findings
        assert finding.category == "healthy"
        assert report.worst == "info"
        assert report.cells == 1
        assert report.failures == 0

    def test_retry_cluster_from_history_samples(self):
        samples = [
            _sample(t=float(i), event="cell-retried",
                    cell=f"micro.k0{i}/GNU")
            for i in range(1, CLUSTER_MIN + 1)
        ]
        report = diagnose([], samples=samples)
        (cluster,) = report.by_category("retry-cluster")
        assert cluster.severity == "warning"
        assert "micro/GNU" in cluster.title
        assert f"{CLUSTER_MIN} retries" in cluster.title

    def test_single_retry_is_noise_not_cluster(self):
        samples = [_sample(event="cell-retried", cell="micro.k01/GNU")]
        report = diagnose([], samples=samples)
        assert not report.by_category("retry-cluster")

    def test_failure_cluster_is_critical(self):
        records = [
            _record("micro.k01", status=STATUS_COMPILE_ERROR),
            _record("micro.k02", status=STATUS_COMPILE_ERROR),
        ]
        report = diagnose(records)
        (cluster,) = report.by_category("failure-cluster")
        assert cluster.severity == "critical"
        assert "micro" in cluster.title
        assert report.worst == "critical"
        assert report.failures == 2

    def test_accepts_mapping_of_records(self):
        records = {("micro.k01", "GNU"): _record()}
        assert diagnose(records).cells == 1

    def test_slow_phases_from_metrics(self):
        metrics = {"histograms": {
            "runner.explore_s": {"total": 9.0, "count": 3},
            "runner.perf_s": {"total": 1.0, "count": 10},
        }}
        report = diagnose([], metrics=metrics)
        phases = report.by_category("slow-phase")
        assert [p.title.split()[1].rstrip(":") for p in phases][:1] == \
            ["runner.explore_s"]  # sorted by total time, slowest first
        assert "mean 3.0000s" in phases[0].detail

    def test_write_errors_surface(self):
        metrics = {"counters": {"history.write_error": 2}}
        report = diagnose([], metrics=metrics)
        (finding,) = report.by_category("write-error")
        assert finding.severity == "warning"
        assert "history.write_error" in finding.title

    def test_cache_collapse_between_runs(self):
        runs = [
            ({"fingerprint": "fp"}, [_sample(cache_hit_rate=0.9)]),
            ({"fingerprint": "fp"}, [_sample(cache_hit_rate=0.1)]),
        ]
        report = diagnose([], runs=runs)
        (finding,) = report.by_category("cache-collapse")
        assert "90% -> 10%" in finding.title

    def test_steady_cache_rate_is_fine(self):
        runs = [
            ({}, [_sample(cache_hit_rate=0.9)]),
            ({}, [_sample(cache_hit_rate=0.8)]),
        ]
        assert not diagnose([], runs=runs).by_category("cache-collapse")

    def test_throughput_below_baseline(self):
        baseline = {
            "scenarios": {"cold_serial_s": 1.0},
            "grid": {"suites": ["micro"], "variants": ["GNU"]},
        }
        samples = [_sample(throughput_cps=0.01)]
        report = diagnose([], samples=samples, baseline=baseline)
        (finding,) = report.by_category("throughput")
        assert "below the bench baseline" in finding.title

    def test_meta_timeouts_and_worker_loss(self):
        report = diagnose([], meta={"timeouts": 2, "cell_timeout_s": 5,
                                    "worker_restarts": 1})
        assert report.by_category("timeouts")
        assert report.by_category("worker-loss")
        assert report.worst == "warning"

    def test_render_lists_every_finding(self):
        report = DoctorReport(findings=(
            DoctorFinding("info", "healthy", "all good"),
            DoctorFinding("critical", "failure-cluster", "bad",
                          detail="details here"),
        ), cells=4, failures=2)
        text = render_doctor(report)
        assert "[worst: critical]" in text
        assert "!! [failure-cluster] bad" in text
        assert "details here" in text


# -- the doctor: over a chaos campaign's cache directory -------------------


#: Permanent compile faults on two GNU cells (a failure cluster) plus
#: healing transient run faults on every LLVM cell (a retry cluster).
CHAOS = FaultPlan(seed=7, rules=(
    FaultRule(site="compile", benchmark="micro.k01", variant="GNU",
              first_attempts=None),
    FaultRule(site="compile", benchmark="micro.k02", variant="GNU",
              first_attempts=None),
    FaultRule(site="run", benchmark="micro.*", variant="LLVM",
              transient=True, first_attempts=1),
))


class TestDoctorFromCacheDir:
    def test_none_without_journals(self, tmp_path):
        assert doctor_from_cache_dir(tmp_path) is None

    @pytest.fixture()
    def chaos_dir(self, a64fx_machine, tmp_path):
        _engine(a64fx_machine, fault_plan=CHAOS, max_retries=2,
                cache_dir=tmp_path, telemetry=Telemetry()).run()
        return tmp_path

    def test_flags_injected_chaos(self, chaos_dir):
        report = doctor_from_cache_dir(chaos_dir)
        assert report is not None

        (retries,) = report.by_category("retry-cluster")
        assert "micro/LLVM" in retries.title

        # The plan's permanent compile faults cluster; the suite's own
        # modeled GNU runtime faults may form a second cluster beside it.
        (failures,) = [f for f in report.by_category("failure-cluster")
                       if "compiler error" in f.title]
        assert "2 'compiler error' cell(s)" in failures.title
        assert "micro.k01/GNU" in failures.detail
        assert report.worst == "critical"
        # The sharded-latest metrics aggregation feeds the phase view.
        assert report.by_category("slow-phase")

    def test_healthy_run_has_no_clusters(self, a64fx_machine, tmp_path):
        # LLVM only: the micro suite's modeled GNU compiler faults
        # would otherwise form a genuine failure cluster.
        _engine(a64fx_machine, variants=("LLVM",), cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        report = doctor_from_cache_dir(tmp_path)
        assert report is not None
        assert not report.by_category("retry-cluster")
        assert not report.by_category("failure-cluster")
        assert report.worst == "info"

    def test_baseline_feeds_throughput_check(self, chaos_dir):
        # An absurdly fast baseline forces the throughput finding: the
        # join between history samples and the bench baseline works.
        baseline = {
            "scenarios": {"cold_serial_s": 1e-9},
            "grid": {"suites": ["micro"], "variants": ["GNU", "LLVM"]},
        }
        report = doctor_from_cache_dir(chaos_dir, baseline=baseline)
        assert report is not None
        assert report.by_category("throughput")


# -- CLI -------------------------------------------------------------------


class TestStatusCli:
    def test_no_campaign_exits_2(self, tmp_path, capsys):
        assert cli_main(["status", "--cache-dir", str(tmp_path)]) == 2
        assert "no campaign journals" in capsys.readouterr().err

    def test_mid_run_exits_1_and_renders(self, a64fx_machine, tmp_path,
                                         capsys):
        _engine(a64fx_machine, shard=(1, 2), cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        rc = cli_main(["status", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[in progress]" in out

    def test_complete_exits_0_and_json_parses(self, a64fx_machine,
                                              tmp_path, capsys):
        _engine(a64fx_machine, cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        rc = cli_main(["status", "--cache-dir", str(tmp_path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["completed"] == doc["total"] == CELLS
        assert doc["shards"][0]["finished"] is True


class TestDoctorCli:
    def test_no_campaign_exits_2(self, tmp_path, capsys):
        assert cli_main(["doctor", "--cache-dir", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_chaos_campaign_exits_1_with_findings(
        self, a64fx_machine, tmp_path, capsys
    ):
        _engine(a64fx_machine, fault_plan=CHAOS, max_retries=2,
                cache_dir=tmp_path, telemetry=Telemetry()).run()
        rc = cli_main(["doctor", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1  # critical findings exit non-zero
        assert "[failure-cluster]" in out
        assert "[retry-cluster]" in out

    def test_healthy_campaign_exits_0(self, a64fx_machine, tmp_path,
                                      capsys):
        _engine(a64fx_machine, variants=("LLVM",), cache_dir=tmp_path,
                telemetry=Telemetry()).run()
        rc = cli_main(["doctor", "--cache-dir", str(tmp_path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["cells"] == CELLS // 2
