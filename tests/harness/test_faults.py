"""Tests for the fault-injection & resilient-execution subsystem:
taxonomy, seed-stable plans, the retrying runner, and the engine's
chaos behavior (worker loss, cache faults, timeouts, degradation)."""

import json

import pytest

from repro.errors import HarnessError
from repro.faults import (
    FAULT_FOR_SITE,
    SITES,
    CompileFault,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FailureInfo,
    RetryPolicy,
    RuntimeFault,
    TimeoutFault,
    VerificationFault,
    WorkerCrash,
    classify_exception,
    failure_info,
)
from repro.harness.engine import CampaignEngine, CampaignJournal, EventKind
from repro.harness.results import (
    FAILURE_STATUSES,
    STATUS_OK,
    STATUS_TIMEOUT,
    CampaignResult,
)
from repro.harness.runner import measure_benchmark, run_cell
from repro.suites import get_suite, micro_suite


def _micro_bench(name: str):
    for bench in micro_suite().benchmarks:
        if bench.name == name:
            return bench
    raise AssertionError(f"no micro benchmark named {name}")


#: A plan whose transient rules strike every cell's first attempt and
#: heal on retry — the chaos-equals-clean workhorse.
def _healing_plan(seed: int = 11) -> FaultPlan:
    return FaultPlan(seed=seed, rules=(
        FaultRule(site="compile", probability=0.5, transient=True),
        FaultRule(site="run", probability=0.4, transient=True),
        FaultRule(site="timeout", probability=0.3, transient=True),
    ))


class TestTaxonomy:
    def test_status_per_kind(self):
        assert CompileFault().status == "compiler error"
        assert RuntimeFault().status == "runtime error"
        assert TimeoutFault().status == "timeout"
        assert VerificationFault().status == "verification error"
        assert WorkerCrash().status == "worker crash"

    def test_every_site_has_a_fault_class(self):
        assert set(FAULT_FOR_SITE) == set(SITES)
        for site, cls in FAULT_FOR_SITE.items():
            assert issubclass(cls, Fault)

    def test_worker_crash_always_transient(self):
        assert WorkerCrash().transient is True

    def test_statuses_match_results_constants(self):
        statuses = {cls().status for s, cls in FAULT_FOR_SITE.items()
                    if s != "cache"}
        assert statuses <= set(FAILURE_STATUSES)

    def test_classify_environmental_errors_transient(self):
        for exc in (OSError("disk"), MemoryError(), ConnectionError("net")):
            fault = classify_exception(exc)
            assert fault.transient is True
            assert isinstance(fault, RuntimeFault)
        fault = classify_exception(TimeoutError("hung"))
        assert fault.transient is True
        assert isinstance(fault, TimeoutFault)

    def test_classify_deterministic_bugs_permanent(self):
        fault = classify_exception(ValueError("bad shape"))
        assert fault.transient is False
        assert "ValueError" in fault.message

    def test_failure_info_round_trip(self):
        info = failure_info(
            TimeoutFault(message="m", transient=True, injected=True), attempts=3
        )
        assert info.kind == "TimeoutFault"
        assert info.retries == 2
        assert FailureInfo.from_dict(info.to_dict()) == info


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(HarnessError):
            FaultRule(site="bogus")
        with pytest.raises(HarnessError):
            FaultRule(site="run", probability=1.5)
        with pytest.raises(HarnessError):
            FaultRule(site="run", probability=-0.1)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=9, rules=(
            FaultRule(site="compile", benchmark="micro.*", probability=0.5,
                      transient=True, message="x"),
            FaultRule(site="worker", first_attempts=None),
        ))
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert loaded.digest() == plan.digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(HarnessError):
            FaultRule.from_dict({"site": "run", "sprobability": 1.0})

    def test_digest_sensitive_to_rules_and_seed(self):
        base = FaultPlan(seed=1, rules=(FaultRule(site="run"),))
        assert base.digest() != FaultPlan(seed=2, rules=base.rules).digest()
        assert base.digest() != FaultPlan(
            seed=1, rules=(FaultRule(site="compile"),)
        ).digest()

    def test_injector_deterministic_across_instances(self):
        plan = _healing_plan()
        a, b = FaultInjector(plan), FaultInjector(plan)
        cells = [(f"micro.k{i:02d}", v) for i in range(1, 23)
                 for v in ("GNU", "LLVM")]
        decisions_a = [a.decide("run", bench, var, 0) for bench, var in cells]
        decisions_b = [b.decide("run", bench, var, 0) for bench, var in cells]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)
        assert any(d is None for d in decisions_a)

    def test_seed_changes_decisions(self):
        cells = [(f"micro.k{i:02d}", "GNU") for i in range(1, 23)]
        first = [FaultInjector(_healing_plan(1)).decide("run", b, v, 0)
                 is not None for b, v in cells]
        second = [FaultInjector(_healing_plan(2)).decide("run", b, v, 0)
                  is not None for b, v in cells]
        assert first != second

    def test_first_attempts_window(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="run", probability=1.0, first_attempts=1),
        ))
        injector = FaultInjector(plan)
        assert injector.decide("run", "s.b", "GNU", 0) is not None
        assert injector.decide("run", "s.b", "GNU", 1) is None

    def test_first_attempts_none_fires_forever(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="run", probability=1.0, first_attempts=None),
        ))
        injector = FaultInjector(plan)
        for attempt in range(4):
            assert injector.decide("run", "s.b", "GNU", attempt) is not None

    def test_probability_extremes(self):
        always = FaultInjector(FaultPlan(rules=(
            FaultRule(site="run", probability=1.0),)))
        never = FaultInjector(FaultPlan(rules=(
            FaultRule(site="run", probability=0.0),)))
        for i in range(20):
            assert always.decide("run", f"s.b{i}", "GNU", 0) is not None
            assert never.decide("run", f"s.b{i}", "GNU", 0) is None

    def test_glob_matching(self):
        plan = FaultPlan(rules=(
            FaultRule(site="run", benchmark="micro.*", variant="GNU",
                      probability=1.0),
        ))
        injector = FaultInjector(plan)
        assert injector.decide("run", "micro.k01", "GNU", 0) is not None
        assert injector.decide("run", "polybench.2mm", "GNU", 0) is None
        assert injector.decide("run", "micro.k01", "LLVM", 0) is None

    def test_fault_is_marked_injected_with_site_type(self):
        plan = FaultPlan(rules=(FaultRule(site="compile", probability=1.0),))
        fault = FaultInjector(plan).decide("compile", "s.b", "GNU", 0)
        assert isinstance(fault, CompileFault)
        assert fault.injected is True


class TestRetryPolicy:
    def test_budget_and_transience(self):
        policy = RetryPolicy(max_retries=2)
        transient = RuntimeFault(transient=True)
        assert policy.should_retry(transient, 0)
        assert policy.should_retry(transient, 1)
        assert not policy.should_retry(transient, 2)
        assert not policy.should_retry(RuntimeFault(transient=False), 0)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.1, multiplier=2.0,
                             max_backoff_s=0.3, jitter=0.25, seed=5)
        delays = [policy.delay_s("s.b", "GNU", a) for a in range(4)]
        assert delays == [policy.delay_s("s.b", "GNU", a) for a in range(4)]
        assert all(0 <= d <= 0.3 * 1.25 for d in delays)

    def test_zero_backoff_means_zero_delay(self):
        policy = RetryPolicy(max_retries=1, backoff_s=0.0)
        assert policy.delay_s("s.b", "GNU", 0) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(HarnessError):
            RetryPolicy(max_retries=-1)


class TestRunCell:
    """The resilient per-cell wrapper, without the engine."""

    def test_transient_fault_heals_to_identical_record(self, a64fx_machine):
        bench = _micro_bench("k01")
        clean = measure_benchmark(bench, "GNU", a64fx_machine)
        injector = FaultInjector(FaultPlan(seed=1, rules=(
            FaultRule(site="run", probability=1.0, transient=True),)))
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            injector=injector,
            retry=RetryPolicy(max_retries=1, backoff_s=0.0),
        )
        assert outcome.record == clean
        assert outcome.record.failure is None
        assert outcome.attempts == 2
        assert len(outcome.retries) == 1
        assert outcome.retries[0].fault.kind == "RuntimeFault"

    def test_retry_budget_exhaustion(self, a64fx_machine):
        bench = _micro_bench("k01")
        injector = FaultInjector(FaultPlan(seed=1, rules=(
            FaultRule(site="run", probability=1.0, transient=True,
                      first_attempts=None, message="always down"),)))
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            injector=injector,
            retry=RetryPolicy(max_retries=2, backoff_s=0.0),
        )
        record = outcome.record
        assert record.status == "runtime error"
        assert record.runs == ()
        assert outcome.attempts == 3
        assert record.failure is not None
        assert record.failure.attempts == 3
        assert record.failure.retries == 2
        assert record.failure.transient is True
        assert record.failure.injected is True

    def test_permanent_fault_burns_no_retries(self, a64fx_machine):
        bench = _micro_bench("k01")
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="compile", probability=1.0, first_attempts=None),)))
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            injector=injector,
            retry=RetryPolicy(max_retries=5, backoff_s=0.0),
        )
        assert outcome.record.status == "compiler error"
        assert outcome.attempts == 1
        assert outcome.retries == ()

    def test_injected_timeout_classifies_as_timeout(self, a64fx_machine):
        bench = _micro_bench("k01")
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="timeout", probability=1.0, first_attempts=None),)))
        outcome = run_cell(bench, "GNU", a64fx_machine, injector=injector)
        assert outcome.record.status == STATUS_TIMEOUT
        assert outcome.record.failure.kind == "TimeoutFault"

    def test_real_wall_clock_budget_enforced(self, a64fx_machine):
        bench = _micro_bench("k01")
        # Any real execution takes longer than a zero-second budget, so
        # the post-hoc check must classify the cell as timed out (and,
        # being transient, retry it until the budget runs dry).
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            timeout_s=1e-9,
            retry=RetryPolicy(max_retries=1, backoff_s=0.0),
        )
        assert outcome.record.status == STATUS_TIMEOUT
        assert outcome.attempts == 2
        assert outcome.record.failure.transient is True
        assert outcome.record.failure.injected is False

    def test_models_own_failures_pass_through(self, a64fx_machine):
        # micro.k22 is the paper's FJclang compiler-error cell: a
        # deterministic model failure, not a fault — no retries burned,
        # no failure block attached.
        bench = _micro_bench("k22")
        clean = measure_benchmark(bench, "FJclang", a64fx_machine)
        assert clean.status != STATUS_OK
        outcome = run_cell(
            bench, "FJclang", a64fx_machine,
            retry=RetryPolicy(max_retries=3, backoff_s=0.0),
        )
        assert outcome.record == clean
        assert outcome.record.failure is None
        assert outcome.attempts == 1

    def test_backoff_sleeps_between_attempts(self, a64fx_machine):
        bench = _micro_bench("k01")
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="run", probability=1.0, transient=True),)))
        slept = []
        run_cell(
            bench, "GNU", a64fx_machine,
            injector=injector,
            retry=RetryPolicy(max_retries=1, backoff_s=0.05, jitter=0.0),
            sleep=slept.append,
        )
        assert slept == [0.05]


class TestEngineChaos:
    """Chaos campaigns through the full engine."""

    VARIANTS = ("GNU", "FJtrad")

    def _engine(self, machine, **kwargs):
        return CampaignEngine(
            machine, suites=(get_suite("micro"),), variants=self.VARIANTS,
            retry_backoff_s=0.0, **kwargs,
        )

    def test_transient_chaos_equals_clean_serial_and_parallel(
        self, a64fx_machine
    ):
        clean = self._engine(a64fx_machine).run()
        plan = _healing_plan()
        serial = self._engine(a64fx_machine, fault_plan=plan, max_retries=2).run()
        parallel = self._engine(
            a64fx_machine, fault_plan=plan, max_retries=2, workers=4
        ).run()
        assert serial.records == clean.records
        assert parallel.records == clean.records
        assert serial.meta["retried"] > 0
        assert serial.meta["retried"] == parallel.meta["retried"]
        assert serial.meta["fault_plan"] == plan.digest()

    def test_worker_crash_requeues_and_recovers(self, a64fx_machine):
        clean = self._engine(a64fx_machine).run()
        plan = FaultPlan(seed=4, rules=(
            FaultRule(site="worker", probability=1.0, transient=True),))
        events = []
        result = self._engine(
            a64fx_machine, fault_plan=plan, workers=4
        ).run(emit=events.append)
        assert result.records == clean.records
        assert result.meta["worker_restarts"] >= 1
        assert any(e.kind is EventKind.WORKER_LOST for e in events)

    def test_worker_site_ignored_in_serial(self, a64fx_machine):
        clean = self._engine(a64fx_machine).run()
        plan = FaultPlan(seed=4, rules=(
            FaultRule(site="worker", probability=1.0, transient=True,
                      first_attempts=None),))
        result = self._engine(a64fx_machine, fault_plan=plan).run()
        assert result.records == clean.records
        assert result.meta["worker_restarts"] == 0

    def test_permanent_faults_degrade_with_taxonomy(self, a64fx_machine):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(site="compile", benchmark="micro.k01",
                      first_attempts=None),
            FaultRule(site="run", benchmark="micro.k02",
                      first_attempts=None),
            FaultRule(site="timeout", benchmark="micro.k03",
                      first_attempts=None),
            FaultRule(site="verify", benchmark="micro.k04",
                      first_attempts=None),
        ))
        events = []
        result = self._engine(
            a64fx_machine, fault_plan=plan, max_retries=1
        ).run(emit=events.append)
        expected = {
            "micro.k01": "compiler error",
            "micro.k02": "runtime error",
            "micro.k03": "timeout",
            "micro.k04": "verification error",
        }
        for bench, status in expected.items():
            for variant in self.VARIANTS:
                record = result.get(bench, variant)
                assert record.status == status
                assert record.failure is not None
                assert record.failure.injected is True
        assert result.meta["failures"] >= len(expected) * len(self.VARIANTS)
        assert any(e.kind is EventKind.CELL_TIMED_OUT for e in events)
        assert any(e.kind is EventKind.CELL_FAILED for e in events)

    def test_retried_cells_emit_cell_retried_events(self, a64fx_machine):
        events = []
        self._engine(
            a64fx_machine, fault_plan=_healing_plan(), max_retries=2
        ).run(emit=events.append)
        retried = [e for e in events if e.kind is EventKind.CELL_RETRIED]
        assert retried
        assert all("retried" in e.message for e in retried)

    def test_failure_blocks_survive_save_load(self, a64fx_machine, tmp_path):
        plan = FaultPlan(seed=1, rules=(
            FaultRule(site="compile", benchmark="micro.k01",
                      first_attempts=None),))
        result = self._engine(a64fx_machine, fault_plan=plan).run()
        path = tmp_path / "chaos.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.records == result.records
        block = loaded.get("micro.k01", "GNU").failure
        assert block is not None and block.kind == "CompileFault"
        # Clean cells carry no block in the JSON (schema-additive).
        raw = json.loads(path.read_text())
        clean_cells = [r for r in raw["records"]
                       if r.get("status", STATUS_OK) == STATUS_OK]
        assert clean_cells
        assert all("failure" not in r for r in clean_cells)

    def test_cache_fault_forces_reexecution(self, a64fx_machine, tmp_path):
        plan = FaultPlan(seed=2, rules=(
            FaultRule(site="cache", probability=1.0, first_attempts=None),))
        kwargs = dict(fault_plan=plan, cache_dir=tmp_path)
        first = self._engine(a64fx_machine, **kwargs).run()
        second = self._engine(a64fx_machine, **kwargs).run()
        assert second.records == first.records
        # Every lookup was chaos-suppressed: nothing hit, everything
        # re-executed.
        assert second.meta["cache_hits"] == 0
        assert second.meta["cache_faults"] == len(second.records)

    def test_resilience_options_keep_default_fingerprint(self, a64fx_machine):
        plain = self._engine(a64fx_machine)
        explicit = self._engine(
            a64fx_machine, fault_plan=None, max_retries=1, cell_timeout_s=None
        )
        assert plain.campaign_fingerprint() == explicit.campaign_fingerprint()
        chaotic = self._engine(a64fx_machine, fault_plan=_healing_plan())
        assert chaotic.campaign_fingerprint() != plain.campaign_fingerprint()

    def test_journal_corrupted_mid_resume(self, a64fx_machine, tmp_path):
        clean = self._engine(a64fx_machine).run()
        interrupted = self._engine(a64fx_machine, cache_dir=tmp_path)
        interrupted.run()
        journal_path = tmp_path / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "done"
        # Simulate a kill plus on-disk rot: drop the done marker,
        # mangle one middle cell line, truncate the trailing one.
        middle = len(lines) // 2
        lines[middle] = lines[middle][: len(lines[middle]) // 2]
        journal_path.write_text("\n".join(lines[:-2]) + "\n" + lines[-2][:10])
        # Wipe the cell cache so only the journal can restore cells.
        for entry in (tmp_path / "cells").glob("*.json"):
            entry.unlink()
        resumed = self._engine(
            a64fx_machine, cache_dir=tmp_path, resume=True
        ).run()
        assert resumed.records == clean.records
        assert resumed.meta["resumed"] > 0

    def test_engine_validates_resilience_options(self, a64fx_machine):
        with pytest.raises(HarnessError):
            self._engine(a64fx_machine, cell_timeout_s=0.0)
        with pytest.raises(HarnessError):
            self._engine(a64fx_machine, max_retries=-1)
        with pytest.raises(HarnessError):
            self._engine(a64fx_machine, max_worker_restarts=-1)


class TestResilienceReporting:
    def test_resilience_markdown_for_chaos_run(self, a64fx_machine):
        from repro.analysis import resilience_markdown

        plan = FaultPlan(seed=1, rules=(
            FaultRule(site="timeout", benchmark="micro.k05",
                      first_attempts=None),
            FaultRule(site="run", probability=0.4, transient=True),
        ))
        engine = CampaignEngine(
            a64fx_machine, suites=(get_suite("micro"),),
            variants=("GNU",), fault_plan=plan, max_retries=1,
            retry_backoff_s=0.0,
        )
        text = resilience_markdown(engine.run())
        assert "## Resilience" in text
        assert "micro.k05/GNU" in text
        assert "timeout" in text
        assert "FAIL" not in text

    def test_clean_run_renders_no_section(self, a64fx_machine):
        from repro.analysis import resilience_markdown

        engine = CampaignEngine(
            a64fx_machine, suites=(get_suite("micro"),), variants=("GNU",)
        )
        assert resilience_markdown(engine.run()) == ""
