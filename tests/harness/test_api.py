"""Tests for the redesigned public API (repro.api) and the result
schema versioning / deprecation shims that support it."""

import json

import pytest

import repro
from repro.api import CampaignConfig, CampaignSession, EventKind
from repro.errors import HarnessError
from repro.harness import (
    RESULT_SCHEMA_VERSION,
    CampaignResult,
    RunRecord,
    run_campaign,
)
from repro.harness.results import STATUS_OK, record_from_dict, record_to_dict
from repro.suites import micro_suite


class TestCampaignConfig:
    def test_defaults(self):
        cfg = CampaignConfig()
        assert cfg.workers == 1
        assert cfg.cache_dir is None
        assert not cfg.resume
        assert len(cfg.variants) == 5

    def test_with_(self):
        cfg = CampaignConfig().with_(workers=4, suites=("micro",))
        assert cfg.workers == 4 and cfg.suites == ("micro",)
        assert CampaignConfig().workers == 1  # original untouched

    def test_top_level_reexports(self):
        assert repro.CampaignSession is CampaignSession
        assert repro.CampaignConfig is CampaignConfig
        assert repro.EventKind is EventKind

    def test_tuning_exports(self):
        import repro.api as api
        import repro.tuning as tuning

        assert api.TuneSpec is tuning.TuneSpec
        assert api.TuneResult is tuning.TuneResult
        assert api.run_tune is tuning.run_tune
        assert "TuneSpec" in api.__all__ and "run_tune" in api.__all__


class TestCampaignSession:
    def test_run_restricted_campaign(self):
        session = CampaignSession(
            CampaignConfig(suites=("top500",), variants=("GNU", "LLVM"))
        )
        result = session.run()
        assert len(result.records) == 6
        assert result is session.result
        assert result.meta["workers"] == 1

    def test_keyword_overrides(self):
        session = CampaignSession(benchmarks=("micro.k01",), variants=("GNU",))
        result = session.run()
        assert list(result.records) == [("micro.k01", "GNU")]

    def test_machine_by_name(self):
        session = CampaignSession(
            CampaignConfig(machine="xeon", suites=("polybench",), variants=("icc",))
        )
        assert session.engine().machine.name == "Xeon"

    def test_unknown_machine_rejected(self):
        with pytest.raises(HarnessError, match="unknown machine"):
            CampaignSession(CampaignConfig(machine="fugaku")).engine()

    def test_result_before_run_raises(self):
        with pytest.raises(HarnessError, match="has not been run"):
            CampaignSession().result

    def test_subscribe_decorator_and_events(self):
        session = CampaignSession(
            CampaignConfig(benchmarks=("micro.k01", "micro.k02"), variants=("GNU",))
        )
        events = []

        @session.subscribe
        def collect(event):
            events.append(event)

        session.run()
        kinds = [e.kind for e in events]
        assert EventKind.CAMPAIGN_STARTED in kinds
        assert kinds.count(EventKind.CELL_FINISHED) == 2
        assert kinds[-1] is EventKind.CAMPAIGN_FINISHED
        assert "2" in str(events[-1])  # events render readably

    def test_cells_enumeration(self):
        session = CampaignSession(
            CampaignConfig(suites=("top500",), variants=("GNU",))
        )
        cells = session.cells()
        assert len(cells) == 3
        assert cells[0].index == 0

    def test_save_round_trip(self, tmp_path):
        session = CampaignSession(
            CampaignConfig(benchmarks=("micro.k01",), variants=("GNU",))
        )
        session.run()
        path = tmp_path / "out.json"
        session.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.records == session.result.records
        assert loaded.meta["engine_version"] == session.result.meta["engine_version"]


class TestLegacyShims:
    def test_old_callback_adapted_with_warning(self, a64fx_machine):
        seen = []
        with pytest.warns(DeprecationWarning, match="progress"):
            run_campaign(
                a64fx_machine,
                variants=("FJtrad",),
                benchmarks=micro_suite().benchmarks[:2],
                progress=lambda b, v: seen.append((b, v)),
            )
        assert len(seen) == 2
        assert seen[0][1] == "FJtrad"

    def test_run_campaign_deprecated(self, a64fx_machine):
        # The shim itself is deprecated (removal: 2.0) and must say so
        # even without the legacy progress callback.
        with pytest.warns(DeprecationWarning, match="CampaignSession"):
            run_campaign(
                a64fx_machine, variants=("FJtrad",),
                benchmarks=micro_suite().benchmarks[:1],
            )

    def test_run_benchmark_deprecated(self, a64fx_machine):
        from repro.harness import measure_benchmark, run_benchmark

        bench = micro_suite().benchmarks[0]
        with pytest.warns(DeprecationWarning, match="measure_benchmark"):
            shimmed = run_benchmark(bench, "GNU", a64fx_machine)
        assert shimmed == measure_benchmark(bench, "GNU", a64fx_machine)


class TestResultSchemaVersioning:
    def _v1_text(self):
        # The original unversioned on-disk format: no "schema" marker,
        # every record field spelled out.
        return json.dumps(
            {
                "machine": "A64FX",
                "records": [
                    {
                        "benchmark": "s.b",
                        "suite": "s",
                        "variant": "GNU",
                        "ranks": 4,
                        "threads": 12,
                        "runs": [1.5, 1.2],
                        "status": "ok",
                        "exploration": [[1, 1, 2.0]],
                        "diagnostics": [],
                    }
                ],
            }
        )

    def test_v1_file_still_loads(self):
        result = CampaignResult.from_json(self._v1_text())
        rec = result.get("s.b", "GNU")
        assert rec.best_s == 1.2
        assert rec.exploration == ((1, 1, 2.0),)
        assert result.meta == {}

    def test_v2_round_trip_with_meta(self, tmp_path):
        result = CampaignResult(machine="A64FX", meta={"workers": 4})
        result.add(RunRecord("s.b", "s", "GNU", 1, 1, (1.0,)))
        path = tmp_path / "r.json"
        result.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        loaded = CampaignResult.load(path)
        assert loaded.meta["workers"] == 4
        assert loaded.records == result.records

    def test_unknown_schema_rejected(self):
        text = json.dumps({"schema": 99, "machine": "A64FX", "records": []})
        with pytest.raises(HarnessError, match="unknown CampaignResult schema"):
            CampaignResult.from_json(text)

    def test_empty_exploration_round_trips(self, tmp_path):
        # Regression: empty exploration/diagnostics used to be brittle
        # on save/load; v2 omits them on disk and restores defaults.
        result = CampaignResult(machine="A64FX")
        rec = RunRecord("s.b", "s", "GNU", 1, 1, (1.0,), exploration=(), diagnostics=())
        result.add(rec)
        path = tmp_path / "r.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.get("s.b", "GNU") == rec
        assert loaded.get("s.b", "GNU").exploration == ()

    def test_record_dict_omits_empty_optionals(self):
        rec = RunRecord("s.b", "s", "GNU", 1, 1, (1.0,))
        raw = record_to_dict(rec)
        assert "exploration" not in raw and "diagnostics" not in raw
        assert "status" not in raw  # ok is the default
        assert record_from_dict(raw) == rec

    def test_record_missing_runs_is_clear_error(self):
        with pytest.raises(HarnessError, match="missing 'runs'"):
            record_from_dict({"benchmark": "s.b"})

    def test_duplicate_add_message_names_machine_and_resume(self):
        result = CampaignResult(machine="A64FX")
        rec = RunRecord("s.b", "s", "GNU", 1, 1, (1.0,))
        result.add(rec)
        with pytest.raises(HarnessError) as err:
            result.add(rec)
        message = str(err.value)
        assert "A64FX" in message
        assert "--resume" in message
        assert "s.b" in message and "GNU" in message
