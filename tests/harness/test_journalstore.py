"""Tests for the sharded journal store: deterministic shard
assignment, append-only resume safety (the truncate-then-rewrite
data-loss fix), cross-shard merge, kernel-cache chaos, and the
serial-vs-sharded equality contract."""

import dataclasses
import json
import os

import pytest

from repro.errors import HarnessError
from repro import telemetry
from repro.faults import FaultPlan, FaultRule
from repro.faults.taxonomy import FailureInfo, RetryStep
from repro.harness.engine import (
    _BENCH_FINGERPRINTS,
    CampaignEngine,
    CellCache,
    EventKind,
    _atomic_write_text,
    benchmark_fingerprint,
)
from repro.harness.journalstore import (
    CampaignJournal,
    DirectoryJournalStore,
    merge_journals,
    merged_result,
    shard_cells,
    shard_indices,
    shard_journal_name,
    shard_of,
    validate_shard,
)
from repro.harness.results import RunRecord, record_from_dict, record_to_dict
from repro.harness.runner import run_cell
from repro.perf.cost import CompilationCache
from repro.suites import get_benchmark, micro_suite, top500_suite
from repro.telemetry import Telemetry

VARIANTS = ("FJtrad", "GNU")


def _benches(n: int = 4):
    return micro_suite().benchmarks[:n]


def _cells(benches, variants=VARIANTS):
    return [(b.full_name, v) for b in benches for v in variants]


def _record(bench: str, variant: str, t: float = 1.0) -> RunRecord:
    return RunRecord(bench, bench.split(".")[0], variant, 1, 1, (t,))


class TestShardAssignment:
    def test_deterministic_and_repeatable(self):
        cells = _cells(_benches(6))
        first = shard_of(cells, 3)
        assert first == shard_of(cells, 3) == shard_of(list(cells), 3)

    def test_benchmark_major(self):
        # All variants of one benchmark land on the same shard, so a
        # shard's workers keep reusing compiled kernels.
        cells = _cells(_benches(5))
        owners = dict(zip(cells, shard_of(cells, 2)))
        for bench in {b for b, _v in cells}:
            shards = {owners[(b, v)] for b, v in cells if b == bench}
            assert len(shards) == 1

    def test_partition_is_exact(self):
        cells = _cells(_benches(7))
        pieces = [shard_cells(cells, i, 3) for i in (1, 2, 3)]
        merged = [c for piece in pieces for c in piece]
        assert sorted(merged) == sorted(cells)
        assert len(merged) == len(set(merged))  # disjoint

    def test_single_shard_is_everything(self):
        cells = _cells(_benches(3))
        assert shard_cells(cells, 1, 1) == tuple(cells)

    def test_one_based_validation(self):
        assert validate_shard(None) == (1, 1)
        assert validate_shard((2, 4)) == (2, 4)
        with pytest.raises(HarnessError, match="1-based"):
            validate_shard((0, 2))
        with pytest.raises(HarnessError):
            validate_shard((3, 2))
        with pytest.raises(HarnessError):
            validate_shard((1, 0))
        with pytest.raises(HarnessError):
            validate_shard("1/2")

    def test_journal_names(self):
        assert shard_journal_name(1, 1) == "journal.jsonl"  # legacy
        assert shard_journal_name(2, 4) == "journal-2of4.jsonl"
        with pytest.raises(HarnessError):
            shard_journal_name(5, 4)


class TestShardIndices:
    """Positional round-robin sharding (tuning batches, not cells)."""

    def test_round_robin_partition(self):
        pieces = [shard_indices(10, i, 3) for i in (1, 2, 3)]
        assert pieces[0] == (0, 3, 6, 9)
        assert pieces[1] == (1, 4, 7)
        assert pieces[2] == (2, 5, 8)
        merged = sorted(i for piece in pieces for i in piece)
        assert merged == list(range(10))

    def test_single_shard_owns_everything(self):
        assert shard_indices(5, 1, 1) == (0, 1, 2, 3, 4)

    def test_empty_batch(self):
        assert shard_indices(0, 2, 3) == ()

    def test_more_shards_than_items(self):
        assert shard_indices(2, 3, 4) == ()
        assert shard_indices(2, 1, 4) == (0,)

    def test_validation(self):
        with pytest.raises(HarnessError):
            shard_indices(4, 3, 2)
        with pytest.raises(HarnessError):
            shard_indices(-1, 1, 1)


class TestAppendOnlyJournal:
    """The data-loss fix: an existing journal is never truncated."""

    def test_keep_returns_existing_and_preserves_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.start("fp", "A64FX", [("s.a", "GNU"), ("s.b", "GNU")])
        journal.append(_record("s.a", "GNU"))
        journal.close()

        again = CampaignJournal(path)
        existing = again.start("fp", "A64FX", [("s.a", "GNU"), ("s.b", "GNU")],
                               keep=True)
        assert existing == {("s.a", "GNU")}
        # The old record is still on disk before anything is written.
        assert b'"s.a"' in path.read_bytes()
        again.append(_record("s.b", "GNU"))
        again.done()
        header, records, finished = CampaignJournal(path).load()
        assert [(r.benchmark, r.variant) for r in records] == [
            ("s.a", "GNU"), ("s.b", "GNU")]
        assert finished

    def test_keep_with_foreign_fingerprint_starts_fresh(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.start("old-fp", "A64FX", [("s.a", "GNU")])
        journal.append(_record("s.a", "GNU"))
        journal.close()
        existing = CampaignJournal(path).start(
            "new-fp", "A64FX", [("s.a", "GNU")], keep=True)
        assert existing == set()
        header, records, _ = CampaignJournal(path).load()
        assert header["fingerprint"] == "new-fp" and records == []

    def test_append_after_truncated_trailing_line(self, tmp_path):
        # A kill mid-write leaves a partial line with no newline; the
        # next append must start a fresh line, not extend the garbage.
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.start("fp", "A64FX", [("s.a", "GNU"), ("s.b", "GNU")])
        journal.append(_record("s.a", "GNU"))
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "record": {"benchm')
        again = CampaignJournal(path)
        assert again.start("fp", "A64FX", [], keep=True) == {("s.a", "GNU")}
        again.append(_record("s.b", "GNU"))
        again.close()
        _header, records, _ = CampaignJournal(path).load()
        assert [(r.benchmark, r.variant) for r in records] == [
            ("s.a", "GNU"), ("s.b", "GNU")]

    def test_header_carries_shard_and_cells(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal-2of3.jsonl")
        journal.start("fp", "A64FX", [("s.a", "GNU"), ("s.b", "GNU")],
                      shard=(2, 3))
        journal.close()
        header, _, _ = CampaignJournal(journal.path).load()
        assert header["shard"] == [2, 3]
        assert header["cells"] == [["s.a", "GNU"], ["s.b", "GNU"]]

    def test_positional_compatibility(self, tmp_path):
        # Pre-shard callers pass (fingerprint, machine, cells)
        # positionally and expect a fresh journal.
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        assert journal.start("fp", "A64FX", [("s.b", "GNU")]) == set()
        journal.close()


class TestMerge:
    def _write_shard(self, root, index, count, cells, records,
                     fingerprint="fp", done=True):
        journal = CampaignJournal(root / shard_journal_name(index, count))
        journal.start(fingerprint, "A64FX", cells, shard=(index, count))
        for record in records:
            journal.append(record)
        if done:
            journal.done()
        else:
            journal.close()
        return journal.path

    def test_merge_two_shards_canonical_order(self, tmp_path):
        cells = [("s.a", "GNU"), ("s.a", "LLVM"), ("s.b", "GNU"), ("s.b", "LLVM")]
        self._write_shard(tmp_path, 1, 2, cells,
                          [_record("s.a", "LLVM"), _record("s.a", "GNU")])
        self._write_shard(tmp_path, 2, 2, cells,
                          [_record("s.b", "GNU"), _record("s.b", "LLVM")])
        merged = DirectoryJournalStore(tmp_path).merge()
        assert merged is not None and merged.complete
        assert list(merged.records) == cells  # canonical, not arrival, order
        assert {cov.label for cov in merged.shards} == {"1/2", "2/2"}

    def test_merge_includes_legacy_journal(self, tmp_path):
        cells = [("s.a", "GNU"), ("s.b", "GNU")]
        self._write_shard(tmp_path, 1, 1, cells, [_record("s.a", "GNU")],
                          done=False)  # legacy journal.jsonl, partial
        self._write_shard(tmp_path, 2, 2, cells, [_record("s.b", "GNU")])
        merged = DirectoryJournalStore(tmp_path).merge()
        assert merged.complete
        assert merged.shards[0].path.endswith("journal.jsonl")  # legacy first

    def test_overlapping_identical_records_dedupe(self, tmp_path):
        cells = [("s.a", "GNU")]
        record = _record("s.a", "GNU")
        self._write_shard(tmp_path, 1, 2, cells, [record])
        self._write_shard(tmp_path, 2, 2, cells, [record])
        merged = DirectoryJournalStore(tmp_path).merge()
        assert len(merged.records) == 1

    def test_conflicting_records_raise(self, tmp_path):
        cells = [("s.a", "GNU")]
        self._write_shard(tmp_path, 1, 2, cells, [_record("s.a", "GNU", 1.0)])
        self._write_shard(tmp_path, 2, 2, cells, [_record("s.a", "GNU", 2.0)])
        with pytest.raises(HarnessError, match="conflicting records"):
            DirectoryJournalStore(tmp_path).merge()

    def test_fingerprint_mismatch_raises(self, tmp_path):
        cells = [("s.a", "GNU")]
        self._write_shard(tmp_path, 1, 2, cells, [], fingerprint="fp-one")
        self._write_shard(tmp_path, 2, 2, cells, [], fingerprint="fp-two")
        with pytest.raises(HarnessError, match="different campaign"):
            DirectoryJournalStore(tmp_path).merge()
        with pytest.raises(HarnessError, match="different campaign"):
            DirectoryJournalStore(tmp_path).merge(expect_fingerprint="fp-two")

    def test_merge_empty_store(self, tmp_path):
        assert DirectoryJournalStore(tmp_path).merge() is None
        assert merge_journals([tmp_path / "nope.jsonl"]) is None

    def test_merged_result_partial(self, tmp_path):
        cells = [("s.a", "GNU"), ("s.b", "GNU")]
        self._write_shard(tmp_path, 1, 2, cells, [_record("s.a", "GNU")])
        merged = DirectoryJournalStore(tmp_path).merge()
        assert not merged.complete and merged.missing == (("s.b", "GNU"),)
        with pytest.raises(HarnessError, match="missing"):
            merged_result(merged)
        partial = merged_result(merged, allow_partial=True)
        assert len(partial.records) == 1
        assert partial.meta["missing"] == 1
        assert partial.meta["merged_from"][0]["shard"] == [1, 2]


class _Boom(Exception):
    pass


class TestShardedEngine:
    def _engine(self, machine, **kw):
        return CampaignEngine(
            machine, variants=VARIANTS,
            benchmarks=top500_suite().benchmarks + micro_suite().benchmarks[:3],
            **kw,
        )

    def test_invalid_shard_rejected(self, a64fx_machine):
        with pytest.raises(HarnessError):
            self._engine(a64fx_machine, shard=(0, 2))
        with pytest.raises(HarnessError):
            self._engine(a64fx_machine, shard=(3, 2))

    def test_serial_vs_sharded_records_identical(self, a64fx_machine, tmp_path):
        baseline = self._engine(a64fx_machine).run()
        for index in (1, 2, 3):
            result = self._engine(
                a64fx_machine, cache_dir=tmp_path, shard=(index, 3)).run()
            assert result.meta["shard"] == [index, 3]
            assert result.meta["campaign_cells"] == len(baseline.records)
            for key, record in result.records.items():
                assert baseline.records[key] == record
        merged = DirectoryJournalStore(tmp_path).merge()
        assert merged.complete
        full = merged_result(merged)
        assert full.records == baseline.records
        assert list(full.records) == list(baseline.records)  # byte order too
        assert (json.loads(full.to_json())["records"]
                == json.loads(baseline.to_json())["records"])

    def test_any_node_resumes_the_whole_sweep(self, a64fx_machine, tmp_path):
        # Shard 1 ran to completion elsewhere; an unsharded resume on
        # this "node" replays it from the merged stream and executes
        # only the remainder.
        self._engine(a64fx_machine, cache_dir=tmp_path, shard=(1, 2)).run()
        for p in (tmp_path / "cells").glob("*.json"):
            p.unlink()  # only the journals can restore shard 1
        resumed = self._engine(a64fx_machine, cache_dir=tmp_path,
                               resume=True).run()
        baseline = self._engine(a64fx_machine).run()
        assert resumed.records == baseline.records
        shard1 = len(shard_cells(list(baseline.records), 1, 2))
        assert resumed.meta["resumed"] == shard1
        assert resumed.meta["executed"] == len(baseline.records) - shard1

    def test_shard_resumes_its_own_journal(self, a64fx_machine, tmp_path):
        first = self._engine(a64fx_machine, cache_dir=tmp_path,
                             shard=(2, 2)).run()
        for p in (tmp_path / "cells").glob("*.json"):
            p.unlink()
        again = self._engine(a64fx_machine, cache_dir=tmp_path, shard=(2, 2),
                             resume=True).run()
        assert again.records == first.records
        assert again.meta["executed"] == 0
        assert again.meta["resumed"] == len(first.records)

    def test_kill_between_start_and_replay_loses_nothing(
            self, a64fx_machine, tmp_path, monkeypatch):
        """Regression for the truncate-then-rewrite window: the old
        ``start`` opened the journal with mode "w", so a crash right
        after it lost every checkpointed record."""
        self._engine(a64fx_machine, cache_dir=tmp_path).run()
        path = tmp_path / "journal.jsonl"
        _, records_before, _ = CampaignJournal(path).load()
        assert records_before  # the journal holds the whole campaign

        real_start = CampaignJournal.start

        def crash_right_after_start(self, *args, **kwargs):
            real_start(self, *args, **kwargs)
            raise _Boom("killed between journal open and re-persist")

        monkeypatch.setattr(CampaignJournal, "start", crash_right_after_start)
        with pytest.raises(_Boom):
            self._engine(a64fx_machine, cache_dir=tmp_path, resume=True).run()
        monkeypatch.undo()

        _, records_after, _ = CampaignJournal(path).load()
        assert len(records_after) == len(records_before)  # nothing lost

    def test_fresh_run_still_replaces_journal_atomically(
            self, a64fx_machine, tmp_path):
        # Without --resume a new campaign replaces the journal; the old
        # file stays intact until the new header is durably in place.
        self._engine(a64fx_machine, cache_dir=tmp_path).run()
        result = self._engine(a64fx_machine, cache_dir=tmp_path).run()
        _, records, finished = CampaignJournal(tmp_path / "journal.jsonl").load()
        assert len(records) == len(result.records) and finished

    def test_shard_events_and_counts(self, a64fx_machine, tmp_path):
        events = []
        result = self._engine(
            a64fx_machine, cache_dir=tmp_path, shard=(1, 2)).run(events.append)
        started = [e for e in events if e.kind is EventKind.CAMPAIGN_STARTED]
        assert "shard 1/2" in started[0].message
        assert started[0].total == len(result.records)


class TestKernelCacheChaos:
    """ROADMAP: chaos coverage for the compiled-kernel cache."""

    def _plan(self):
        return FaultPlan(seed=7, rules=(
            FaultRule(site="kernel-cache", probability=1.0, transient=True),
        ))

    def test_injected_fault_forces_recompile(self, a64fx_machine, tmp_path):
        from repro.faults.plan import FaultInjector
        from tests.conftest import build_gemm

        kernel = build_gemm(n=32, name="chaos_gemm")
        warm = CompilationCache(persist_dir=tmp_path)
        warm.get("GNU", kernel, a64fx_machine, None)
        assert warm.compile_count == 1

        clean = CompilationCache(persist_dir=tmp_path)
        clean.get("GNU", kernel, a64fx_machine, None)
        assert clean.disk_hits == 1 and clean.compile_count == 0

        chaotic = CompilationCache(
            persist_dir=tmp_path, injector=FaultInjector(self._plan()))
        compiled = chaotic.get("GNU", kernel, a64fx_machine, None)
        assert chaotic.fault_misses == 1
        assert chaotic.disk_hits == 0 and chaotic.compile_count == 1
        # Deterministic compilation: the recompiled artifact matches.
        assert compiled.status == clean.get("GNU", kernel, a64fx_machine, None).status

    def test_records_unchanged_under_kernel_cache_chaos(
            self, a64fx_machine, tmp_path):
        benches = micro_suite().benchmarks[:3]
        kw = dict(variants=("GNU",), benchmarks=benches)
        CampaignEngine(a64fx_machine, cache_dir=tmp_path / "warm", **kw).run()

        plain = CampaignEngine(a64fx_machine, **kw).run()
        tel = Telemetry()
        with telemetry.active(tel):
            chaos = CampaignEngine(
                a64fx_machine, cache_dir=tmp_path / "warm",
                fault_plan=self._plan(), **kw,
            ).run()
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("kernel_cache.fault", 0) > 0
        # Chaos campaigns use their own cell-cache namespace, so every
        # cell re-executes — against a kernel cache whose entries keep
        # "rotting".  The records never change.
        assert chaos.records == plain.records


class TestAtomicWriteFailures:
    def test_failed_replace_logged_counted_and_tmp_removed(
            self, tmp_path, monkeypatch, caplog):
        def broken_replace(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", broken_replace)
        with caplog.at_level("WARNING", logger="repro.harness.engine"):
            ok = _atomic_write_text(tmp_path / "cell.json", "{}")
        assert ok is False
        assert any("atomic write" in r.message for r in caplog.records)
        assert list(tmp_path.glob("*.tmp")) == []  # no leaked temp file
        assert not (tmp_path / "cell.json").exists()

    def test_cell_cache_put_counts_write_error(self, tmp_path, monkeypatch):
        cache = CellCache(tmp_path)
        record = _record("s.a", "GNU")
        monkeypatch.setattr(
            "repro.harness.engine._atomic_write_text", lambda *a: False)
        tel = Telemetry()
        with telemetry.active(tel):
            cache.put("k1", record)
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("cell_cache.write_error") == 1
        assert "cell_cache.put" not in counters

    def test_successful_put_still_counts_put(self, tmp_path):
        cache = CellCache(tmp_path)
        tel = Telemetry()
        with telemetry.active(tel):
            cache.put("k1", _record("s.a", "GNU"))
        assert tel.metrics.snapshot()["counters"].get("cell_cache.put") == 1
        assert cache.get("k1") is not None


class TestRetryHistory:
    def test_exhausted_budget_surfaces_history(self, a64fx_machine):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="run", benchmark="micro.k01", transient=True,
                      first_attempts=None),
        ))
        from repro.faults.plan import FaultInjector, RetryPolicy

        bench = get_benchmark("micro.k01")
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            injector=FaultInjector(plan),
            retry=RetryPolicy(max_retries=2, backoff_s=0.0, seed=3),
        )
        record = outcome.record
        assert record.failure is not None
        assert record.failure.retries == 2
        history = record.failure.history
        assert len(history) == 2
        assert [step.attempt for step in history] == [0, 1]
        assert all(step.kind == "RuntimeFault" for step in history)

        # Schema-additive round trip through the v2 record form.
        raw = record_to_dict(record)
        assert len(raw["failure"]["history"]) == 2
        assert record_from_dict(json.loads(json.dumps(raw))) == record

    def test_healed_cells_carry_no_history(self, a64fx_machine):
        # The chaos-gate contract: a transiently-faulted cell that heals
        # must be byte-identical to a fault-free run — no failure block.
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="run", benchmark="micro.k01", transient=True),
        ))
        from repro.faults.plan import FaultInjector, RetryPolicy

        bench = get_benchmark("micro.k01")
        outcome = run_cell(
            bench, "GNU", a64fx_machine,
            injector=FaultInjector(plan),
            retry=RetryPolicy(max_retries=1, backoff_s=0.0, seed=3),
        )
        assert outcome.retries  # the fault did strike
        assert outcome.record.failure is None
        clean = run_cell(bench, "GNU", a64fx_machine)
        assert outcome.record == clean.record

    def test_pre_history_failure_blocks_still_load(self):
        raw = {"kind": "TimeoutFault", "site": "timeout", "attempts": 3,
               "retries": 2, "transient": True, "injected": False,
               "message": "m"}
        info = FailureInfo.from_dict(raw)
        assert info.history == ()
        assert "history" not in info.to_dict()

    def test_retry_step_round_trip(self):
        step = RetryStep(attempt=1, kind="CompileFault", site="compile",
                         message="boom", transient=True, injected=True,
                         delay_s=0.25)
        assert RetryStep.from_dict(step.to_dict()) == step
        info = FailureInfo(kind="CompileFault", site="compile",
                           attempts=2, retries=1, history=(step,))
        assert FailureInfo.from_dict(info.to_dict()) == info


class TestBenchFingerprintMemoBound:
    def test_memo_is_bounded(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.engine._BENCH_FINGERPRINTS_MAX", 8)
        base = micro_suite().benchmarks[0]
        _BENCH_FINGERPRINTS.clear()
        ad_hoc = [dataclasses.replace(base, name=f"tmp{i}") for i in range(50)]
        digests = [benchmark_fingerprint(b) for b in ad_hoc]
        assert len(_BENCH_FINGERPRINTS) <= 8
        # Memoization still works for live entries...
        assert benchmark_fingerprint(ad_hoc[-1]) == digests[-1]
        # ...and eviction never changes the (content-addressed) digest.
        assert benchmark_fingerprint(ad_hoc[0]) == digests[0]

    def test_distinct_objects_same_content_same_digest(self):
        base = micro_suite().benchmarks[0]
        clone = dataclasses.replace(base)
        assert benchmark_fingerprint(base) == benchmark_fingerprint(clone)
