"""Tests for the campaign comparison tool."""

import pytest

from repro.analysis import compare_campaigns
from repro.errors import AnalysisError
from repro.harness import CampaignResult, RunRecord, STATUS_RUNTIME_ERROR


def _campaign(times: dict, statuses: dict | None = None) -> CampaignResult:
    statuses = statuses or {}
    r = CampaignResult(machine="A64FX")
    for (bench, variant), t in times.items():
        status = statuses.get((bench, variant), "ok")
        runs = (t,) if status == "ok" else ()
        r.add(RunRecord(bench, bench.split(".")[0], variant, 1, 1, runs, status=status))
    return r


class TestCompare:
    def test_identical_campaigns(self):
        times = {("s.a", "LLVM"): 1.0, ("s.b", "GNU"): 2.0}
        diff = compare_campaigns(_campaign(times), _campaign(times))
        assert diff.changed() == ()
        assert "identical" in diff.render()

    def test_speedup_detected(self):
        before = _campaign({("s.a", "LLVM"): 2.0, ("s.b", "GNU"): 1.0})
        after = _campaign({("s.a", "LLVM"): 1.0, ("s.b", "GNU"): 1.0})
        changed = compare_campaigns(before, after).changed()
        assert len(changed) == 1
        assert changed[0].benchmark == "s.a"
        assert changed[0].speedup == pytest.approx(2.0)

    def test_threshold_filters_noise(self):
        before = _campaign({("s.a", "LLVM"): 1.00})
        after = _campaign({("s.a", "LLVM"): 1.01})
        diff = compare_campaigns(before, after)
        assert diff.changed(threshold=0.02) == ()
        assert diff.changed(threshold=0.001)

    def test_status_change_always_reported(self):
        before = _campaign({("s.a", "GNU"): 1.0})
        after = _campaign(
            {("s.a", "GNU"): 1.0}, statuses={("s.a", "GNU"): STATUS_RUNTIME_ERROR}
        )
        changed = compare_campaigns(before, after).changed()
        assert len(changed) == 1
        assert changed[0].status_changed
        assert "runtime error" in str(changed[0])

    def test_mismatched_cells_rejected(self):
        before = _campaign({("s.a", "LLVM"): 1.0})
        after = _campaign({("s.b", "LLVM"): 1.0})
        with pytest.raises(AnalysisError):
            compare_campaigns(before, after)

    def test_render_sorted_by_magnitude(self):
        before = _campaign({("s.a", "LLVM"): 1.1, ("s.b", "LLVM"): 4.0})
        after = _campaign({("s.a", "LLVM"): 1.0, ("s.b", "LLVM"): 1.0})
        changed = compare_campaigns(before, after).changed()
        assert changed[0].benchmark == "s.b"  # the 4x move first

    def test_end_to_end_flag_ablation(self, tmp_path, a64fx_machine):
        """The documented workflow: two campaigns, save, diff."""
        from repro.api import CampaignConfig, CampaignSession
        from repro.compilers import parse_flags

        cfg = CampaignConfig(
            machine=a64fx_machine, variants=("GNU",), suites=("top500",)
        )
        base = CampaignSession(cfg).run()
        fast = CampaignSession(
            cfg.with_(
                flags=parse_flags(["-O3", "-march=native", "-flto", "-ffast-math"])
            )
        ).run()
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        base.save(p1)
        fast.save(p2)
        diff = compare_campaigns(
            CampaignResult.load(p1), CampaignResult.load(p2)
        )
        changed = diff.changed()
        # fast-math vectorizes HPCG's dot/SpMV reductions, which are not
        # fully bandwidth-saturated -> a visible win (BabelStream's pure
        # streams stay memory-bound and barely move: correct physics).
        assert any(d.benchmark == "top500.hpcg" and d.speedup > 1.05 for d in changed)
