"""Tests for the compiler advisor — the paper's conclusion as data."""

import pytest

from repro.analysis.advisor import (
    CLASS_C_FP,
    CLASS_FORTRAN,
    CLASS_INTEGER,
    advice_report,
    advise,
    classify_benchmark,
)


class TestClassification:
    def test_fortran(self):
        assert classify_benchmark("micro.k01") == CLASS_FORTRAN
        assert classify_benchmark("spec_cpu.603.bwaves_s") == CLASS_FORTRAN

    def test_integer(self):
        assert classify_benchmark("spec_cpu.657.xz_s") == CLASS_INTEGER
        assert classify_benchmark("micro.k19") == CLASS_INTEGER

    def test_c_fp(self):
        assert classify_benchmark("polybench.gemm") == CLASS_C_FP
        assert classify_benchmark("top500.babelstream") == CLASS_C_FP


class TestAdvice:
    """Sec. 5: 'Fujitsu for Fortran codes, GNU for integer-intensive
    apps, and any clang-based compilers for C/C++'."""

    @pytest.fixture(scope="class")
    def advice(self, campaign_result):
        return advise(campaign_result)

    def test_three_classes_populated(self, advice):
        assert set(advice) == {CLASS_FORTRAN, CLASS_INTEGER, CLASS_C_FP}
        assert sum(a.count for a in advice.values()) == 108

    def test_fortran_recommendation_is_fujitsu(self, advice):
        assert advice[CLASS_FORTRAN].recommended == "FJtrad"

    def test_integer_recommendation_is_gnu(self, advice):
        assert advice[CLASS_INTEGER].recommended == "GNU"

    def test_c_fp_recommendation_is_clang_based(self, advice):
        assert advice[CLASS_C_FP].recommended_family() == "clang-based"

    def test_no_silver_bullet(self, advice, campaign_result):
        # no single variant wins 75%+ of everything
        report = advice_report(campaign_result)
        assert 'No "silver bullet"' in report

    def test_report_mentions_all_classes(self, campaign_result):
        report = advice_report(campaign_result)
        for cls in (CLASS_FORTRAN, CLASS_INTEGER, CLASS_C_FP):
            assert cls in report
