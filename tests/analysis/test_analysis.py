"""Tests for gains, heatmap, figures, and statistics helpers."""

import pytest

from repro.analysis import (
    benchmark_gains,
    coefficient_of_variation,
    figure1,
    figure2,
    gain_glyph,
    geometric_mean,
    overall_summary,
    percent_improvement,
    suite_summary,
    summarize,
    variability_report,
)
from repro.errors import AnalysisError
from repro.harness import CampaignResult, RunRecord, STATUS_COMPILE_ERROR


def _toy_campaign():
    r = CampaignResult(machine="A64FX")
    # bench1: LLVM 2x faster; bench2: FJtrad best; bench3: GNU fails
    data = {
        ("polybench.a", "FJtrad"): (2.0,),
        ("polybench.a", "LLVM"): (1.0,),
        ("polybench.a", "GNU"): (3.0,),
        ("polybench.b", "FJtrad"): (1.0,),
        ("polybench.b", "LLVM"): (1.5,),
        ("polybench.b", "GNU"): (1.2,),
        ("micro.c", "FJtrad"): (4.0,),
        ("micro.c", "LLVM"): (4.4,),
    }
    for (bench, variant), runs in data.items():
        r.add(RunRecord(bench, bench.split(".")[0], variant, 1, 1, runs))
    r.add(RunRecord("micro.c", "micro", "GNU", 1, 1, (), status=STATUS_COMPILE_ERROR))
    return r


class TestGains:
    def test_best_gain(self):
        gains = {g.benchmark: g for g in benchmark_gains(_toy_campaign())}
        assert gains["polybench.a"].best_gain == pytest.approx(2.0)
        assert gains["polybench.a"].best_variant == "LLVM"
        assert gains["polybench.b"].best_gain == pytest.approx(1.0)
        assert gains["polybench.b"].best_variant == "FJtrad"

    def test_failed_cells_excluded_from_best(self):
        gains = {g.benchmark: g for g in benchmark_gains(_toy_campaign())}
        assert gains["micro.c"].best_variant == "FJtrad"

    def test_gain_per_variant(self):
        gains = {g.benchmark: g for g in benchmark_gains(_toy_campaign())}
        assert gains["polybench.a"].gain("GNU") == pytest.approx(2 / 3)

    def test_missing_baseline_raises(self):
        r = CampaignResult(machine="m")
        r.add(RunRecord("s.a", "s", "LLVM", 1, 1, (1.0,)))
        with pytest.raises(AnalysisError):
            benchmark_gains(r)

    def test_summarize(self):
        summary = summarize(benchmark_gains(_toy_campaign()), "all")
        assert summary.count == 3
        assert summary.peak_gain == pytest.approx(2.0)
        assert summary.wins == {"LLVM": 1, "FJtrad": 2}

    def test_suite_summary_filters(self):
        summary = suite_summary(_toy_campaign(), "polybench")
        assert summary.count == 2

    def test_overall_summary(self):
        assert overall_summary(_toy_campaign()).count == 3


class TestHeatmap:
    def test_glyph_buckets(self):
        assert gain_glyph(3.0) == "++"
        assert gain_glyph(1.0) == "  "
        assert gain_glyph(0.3) == "--"

    def test_figure2_cells(self):
        fig = figure2(_toy_campaign())
        cell = fig.cell("polybench.a", "LLVM")
        assert cell.gain == pytest.approx(2.0)
        assert cell.status == "ok"
        failed = fig.cell("micro.c", "GNU")
        assert failed.status == "compiler error"
        assert "compiler error" in failed.text

    def test_render_contains_suites_and_variants(self):
        text = figure2(_toy_campaign()).render()
        assert "=== polybench ===" in text
        assert "FJtrad" in text and "LLVM" in text

    def test_csv_export(self):
        csv = figure2(_toy_campaign()).to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("suite,benchmark")
        assert len(lines) == 1 + 3 * 3  # header + 3 benchmarks x 3 variants


class TestFigure1:
    def test_figure1_from_campaigns(self, campaign_result, xeon_polybench_result):
        fig = figure1(campaign_result, xeon_polybench_result)
        assert len(fig.rows) == 30
        assert fig.max_slowdown > 30
        assert fig.row("2mm").slowdown > 5
        text = fig.render()
        assert "2mm" in text and "slowdown" in text

    def test_missing_reference_raises(self, campaign_result):
        empty = CampaignResult(machine="Xeon")
        with pytest.raises(AnalysisError):
            figure1(campaign_result, empty)


class TestStats:
    def test_cv(self):
        assert coefficient_of_variation([1.0, 1.0]) == 0.0
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([1.0, 2.0]) > 0

    def test_geomean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(AnalysisError):
            geometric_mean([])
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, -1.0])

    def test_percent_improvement(self):
        assert percent_improvement(1.17) == pytest.approx(17.0)

    def test_variability_report(self):
        report = variability_report(_toy_campaign())
        assert set(report) == {"polybench.a", "polybench.b", "micro.c"}


class TestRunSummary:
    def test_basic_summary(self):
        from repro.analysis import run_summary

        s = run_summary([1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9])
        assert s.n == 10
        assert s.min_s == 1.0 and s.max_s == 1.9
        assert s.median_s == pytest.approx(1.45)
        assert s.q1_s < s.median_s < s.q3_s
        assert s.median_ci[0] <= s.median_s <= s.median_ci[1]

    def test_ci_shrinks_with_samples(self):
        from repro.analysis import run_summary

        small = run_summary([1.0 + 0.01 * i for i in range(10)])
        large = run_summary([1.0 + 0.001 * i for i in range(100)])
        rel_small = (small.median_ci[1] - small.median_ci[0]) / small.median_s
        rel_large = (large.median_ci[1] - large.median_ci[0]) / large.median_s
        assert rel_large < rel_small

    def test_from_record(self, campaign_result):
        from repro.analysis import run_summary

        record = campaign_result.get("top500.babelstream", "LLVM")
        s = run_summary(record)
        assert s.n == 10
        assert s.cv > 0.01  # the noisy benchmark
        assert str(s).startswith("n=10")

    def test_empty_rejected(self):
        from repro.analysis import run_summary
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            run_summary([])

    def test_single_run(self):
        from repro.analysis import run_summary

        s = run_summary([2.0])
        assert s.median_s == 2.0
        assert s.median_ci == (2.0, 2.0)
