"""Tests for the SVG figure renderers."""

import xml.dom.minidom

import pytest

from repro.analysis import figure1, figure1_svg, figure2, figure2_svg, gain_color


class TestGainColor:
    def test_parity_is_white(self):
        assert gain_color(1.0) == "#ffffff"

    def test_gain_is_green(self):
        c = gain_color(4.0)
        assert c.startswith("#") and c[3:5] == "ff"  # full green channel
        assert c != "#ffffff"

    def test_loss_is_red(self):
        c = gain_color(0.25)
        assert c[1:3] == "ff"  # full red channel
        assert c != "#ffffff"

    def test_failure_is_grey(self):
        assert gain_color(0.0) == "#dddddd"

    def test_saturates(self):
        assert gain_color(4.0) == gain_color(400.0)


class TestSvgDocuments:
    def test_figure1_svg_well_formed(self, campaign_result, xeon_polybench_result):
        fig = figure1(campaign_result, xeon_polybench_result)
        svg = figure1_svg(fig)
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"
        # one bar per kernel (plus the background rect)
        rects = doc.getElementsByTagName("rect")
        assert len(rects) == 1 + 30
        assert "2mm" in svg and "mvt" in svg

    def test_figure2_svg_well_formed(self, campaign_result):
        fig = figure2(campaign_result)
        svg = figure2_svg(fig)
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"
        # one cell rect per (benchmark, variant) plus the background
        rects = doc.getElementsByTagName("rect")
        assert len(rects) == 1 + 108 * 5
        # failure cells rendered as text
        assert "compiler error" in svg
        assert "runtime error" in svg

    def test_figure2_svg_colors_follow_gains(self, campaign_result):
        fig = figure2(campaign_result)
        svg = figure2_svg(fig)
        # the mvt Polly cell is a >4x gain: saturated green must appear
        assert "#00ff00" in svg
