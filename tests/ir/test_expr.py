"""Unit and property tests for affine index expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IRError
from repro.ir import AffineExpr


class TestConstruction:
    def test_var(self):
        e = AffineExpr.var("i")
        assert e.coefficient("i") == 1
        assert e.const == 0

    def test_constant(self):
        e = AffineExpr.constant(7)
        assert e.is_constant
        assert e.const == 7

    def test_zero_coefficients_dropped(self):
        e = AffineExpr({"i": 0, "j": 2}, 1)
        assert "i" not in e.coeffs
        assert e.coefficient("j") == 2

    def test_invalid_var_name(self):
        with pytest.raises(IRError):
            AffineExpr.var("1abc")


class TestParse:
    @pytest.mark.parametrize(
        "text,coeffs,const",
        [
            ("i", {"i": 1}, 0),
            ("i+1", {"i": 1}, 1),
            ("i-1", {"i": 1}, -1),
            ("2*i", {"i": 2}, 0),
            ("i*3", {"i": 3}, 0),
            ("2*i - j + 3", {"i": 2, "j": -1}, 3),
            ("-i", {"i": -1}, 0),
            ("5", {}, 5),
            ("-5", {}, -5),
            ("i + i", {"i": 2}, 0),
            ("i - i", {}, 0),
            ("k+1-1", {"k": 1}, 0),
        ],
    )
    def test_parse_cases(self, text, coeffs, const):
        e = AffineExpr.parse(text)
        assert dict(e.coeffs) == coeffs
        assert e.const == const

    def test_parse_int_passthrough(self):
        assert AffineExpr.parse(4) == AffineExpr.constant(4)

    def test_parse_expr_passthrough(self):
        e = AffineExpr.var("i")
        assert AffineExpr.parse(e) is e

    @pytest.mark.parametrize("bad", ["", "i j", "i +", "* i", "i ** 2"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(IRError):
            AffineExpr.parse(bad)

    def test_str_parse_roundtrip(self):
        e = AffineExpr({"i": 2, "j": -1, "k": 5}, -7)
        assert AffineExpr.parse(str(e)) == e


class TestAlgebra:
    def test_add(self):
        e = AffineExpr.parse("i+1") + AffineExpr.parse("j-2")
        assert e == AffineExpr.parse("i+j-1")

    def test_add_int(self):
        assert AffineExpr.var("i") + 3 == AffineExpr.parse("i+3")

    def test_sub(self):
        assert AffineExpr.parse("2*i") - AffineExpr.var("i") == AffineExpr.var("i")

    def test_rsub(self):
        assert 5 - AffineExpr.var("i") == AffineExpr.parse("-i+5")

    def test_mul(self):
        assert AffineExpr.parse("i+1") * 3 == AffineExpr.parse("3*i+3")

    def test_mul_non_int_rejected(self):
        with pytest.raises(IRError):
            AffineExpr.var("i") * 1.5  # type: ignore[operator]

    def test_neg(self):
        assert -AffineExpr.parse("i-2") == AffineExpr.parse("-i+2")


class TestQueries:
    def test_evaluate(self):
        e = AffineExpr.parse("2*i + j - 3")
        assert e.evaluate({"i": 5, "j": 1}) == 8

    def test_evaluate_unbound(self):
        with pytest.raises(IRError):
            AffineExpr.var("i").evaluate({})

    def test_substitute(self):
        e = AffineExpr.parse("2*i + j")
        assert e.substitute("i", AffineExpr.parse("k+1")) == AffineExpr.parse("2*k + j + 2")

    def test_substitute_absent_var(self):
        e = AffineExpr.var("i")
        assert e.substitute("z", 5) == e

    def test_rename(self):
        e = AffineExpr.parse("i + 2*j")
        assert e.rename({"i": "x"}) == AffineExpr.parse("x + 2*j")

    def test_rename_merging(self):
        e = AffineExpr.parse("i + j")
        assert e.rename({"j": "i"}) == AffineExpr.parse("2*i")

    def test_variables(self):
        assert AffineExpr.parse("i+j-j").variables == frozenset({"i"})

    def test_hashable(self):
        assert len({AffineExpr.var("i"), AffineExpr.var("i"), AffineExpr.var("j")}) == 2


# -- property-based tests ----------------------------------------------------

_vars = st.sampled_from(["i", "j", "k", "l"])
_exprs = st.builds(
    AffineExpr,
    st.dictionaries(_vars, st.integers(-8, 8), max_size=4),
    st.integers(-100, 100),
)
_envs = st.fixed_dictionaries(
    {v: st.integers(-50, 50) for v in ["i", "j", "k", "l"]}
)


class TestProperties:
    @given(_exprs, _exprs, _envs)
    def test_addition_is_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(_exprs, st.integers(-5, 5), _envs)
    def test_scaling_is_pointwise(self, a, c, env):
        assert (a * c).evaluate(env) == c * a.evaluate(env)

    @given(_exprs, _envs)
    def test_negation_is_pointwise(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(_exprs)
    def test_roundtrip_through_str(self, a):
        assert AffineExpr.parse(str(a)) == a

    @given(_exprs, _exprs)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(_exprs, _envs)
    def test_substitution_matches_evaluation(self, a, env):
        # Substituting i := <const> then evaluating equals evaluating directly.
        sub = a.substitute("i", env["i"])
        assert not sub.depends_on("i")
        assert sub.evaluate(env) == a.evaluate(env)
