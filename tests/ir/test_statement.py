"""Tests for statements and operation counts."""

import pytest

from repro.errors import IRError
from repro.ir import Access, AccessKind, AffineExpr, Array, OpCount, Statement


def _stmt(name="S", reduction=None, predicated=False, **ops):
    a = Array("A", (16,))
    acc = Access(a, (AffineExpr.var("i"),), AccessKind.UPDATE)
    return Statement(name, (acc,), OpCount(**ops), reduction, predicated)


class TestOpCount:
    def test_fma_counts_two_flops(self):
        assert OpCount(fma=3).flops == 6

    def test_flops_sum(self):
        ops = OpCount(fadd=1, fmul=2, fma=1, fdiv=1, fsqrt=1, fspecial=1)
        assert ops.flops == 1 + 2 + 2 + 1 + 1 + 1

    def test_fp_instructions_contracted_vs_not(self):
        ops = OpCount(fadd=1, fma=2)
        assert ops.fp_instructions == 3
        assert ops.fp_instructions_uncontracted == 5

    def test_fp_dominance(self):
        assert OpCount(fma=2, iops=3).is_fp_dominant
        assert not OpCount(fadd=1, iops=3).is_fp_dominant

    def test_scaled(self):
        assert OpCount(fadd=2, iops=4).scaled(0.5) == OpCount(fadd=1, iops=2)

    def test_scaled_rejects_negative(self):
        with pytest.raises(IRError):
            OpCount(fadd=1).scaled(-1)

    def test_add(self):
        assert OpCount(fadd=1, branches=1) + OpCount(fmul=2) == OpCount(fadd=1, fmul=2, branches=1)

    def test_negative_rejected(self):
        with pytest.raises(IRError):
            OpCount(fdiv=-1)

    def test_total_includes_branches(self):
        assert OpCount(iops=2, branches=3).total == 5


class TestStatement:
    def test_requires_accesses(self):
        with pytest.raises(IRError):
            Statement("S", (), OpCount())

    def test_requires_name(self):
        a = Array("A", (4,))
        acc = Access(a, (AffineExpr.var("i"),))
        with pytest.raises(IRError):
            Statement("", (acc,))

    def test_variables_include_reduction(self):
        s = _stmt(reduction="k", fma=1)
        assert "k" in s.variables
        assert "i" in s.variables

    def test_reads_writes_split(self):
        a = Array("A", (8,))
        b = Array("B", (8,))
        s = Statement(
            "S",
            (
                Access(a, (AffineExpr.var("i"),), AccessKind.WRITE),
                Access(b, (AffineExpr.var("i"),), AccessKind.READ),
            ),
        )
        assert len(s.reads) == 1 and s.reads[0].array.name == "B"
        assert len(s.writes) == 1 and s.writes[0].array.name == "A"

    def test_update_counts_in_both(self):
        s = _stmt()
        assert len(s.reads) == 1 and len(s.writes) == 1

    def test_is_reduction(self):
        assert _stmt(reduction="i").is_reduction
        assert not _stmt().is_reduction

    def test_bytes_moved_naive_update_doubles(self):
        s = _stmt()  # one F64 UPDATE access
        assert s.bytes_moved_naive() == 16

    def test_rename_remaps_reduction(self):
        s = _stmt(reduction="i").rename({"i": "x"})
        assert s.reduction_over == "x"
        assert s.accesses[0].indices[0] == AffineExpr.var("x")

    def test_has_indirect(self):
        a = Array("A", (4,))
        acc = Access(a, (AffineExpr.var("i"),), AccessKind.READ, indirect=True)
        s = Statement("S", (acc,))
        assert s.has_indirect_access
