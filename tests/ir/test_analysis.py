"""Tests for stride classification, working sets, SCoP detection."""

import pytest

from repro.ir import (
    Feature,
    KernelBuilder,
    Language,
    StrideClass,
    classify_access,
    contiguous_fraction,
    is_scop,
    nest_access_patterns,
    read,
    reuse_potential,
    update,
    working_set_bytes,
    working_set_profile,
    write,
)
from tests.conftest import build_gemm


class TestStrideClassification:
    def test_gemm_patterns(self):
        nest = build_gemm(64).nests[0]
        by_array = {p.access.array.name: p for p in nest_access_patterns(nest)}
        assert by_array["C"].stride_class is StrideClass.INVARIANT
        assert by_array["A"].stride_class is StrideClass.CONTIGUOUS
        assert by_array["B"].stride_class is StrideClass.STRIDED
        assert by_array["B"].element_stride == 64

    def test_interchanged_gemm_becomes_contiguous(self):
        nest = build_gemm(64).nests[0].permuted(("i", "k", "j"))
        by_array = {p.access.array.name: p for p in nest_access_patterns(nest)}
        assert by_array["B"].stride_class is StrideClass.CONTIGUOUS
        assert by_array["C"].stride_class is StrideClass.CONTIGUOUS
        assert by_array["A"].stride_class is StrideClass.INVARIANT

    def test_indirect_classified(self):
        b = KernelBuilder("t", Language.C)
        b.array("x", (32,))
        nest = b.nest([("i", 32)], [b.stmt(read("x", "i", indirect=True), write("x", "i"))])
        patterns = nest_access_patterns(nest)
        assert any(p.stride_class is StrideClass.INDIRECT for p in patterns)

    def test_contiguous_fraction(self):
        nest = build_gemm(64).nests[0]
        assert contiguous_fraction(nest) == pytest.approx(2 / 3)
        assert contiguous_fraction(nest.permuted(("i", "k", "j"))) == 1.0


class TestWorkingSets:
    def test_profile_monotone_decreasing(self):
        nest = build_gemm(64).nests[0]
        profile = working_set_profile(nest)
        assert len(profile) == 3
        assert profile[0] >= profile[1] >= profile[2]

    def test_whole_nest_ws_is_footprint(self):
        n = 64
        nest = build_gemm(n).nests[0]
        assert working_set_bytes(nest, 0) == 3 * n * n * 8

    def test_innermost_ws(self):
        n = 64
        nest = build_gemm(n).nests[0]
        # k loop touches: one row of A (n), one column of B (n), one C elt.
        assert working_set_bytes(nest, 2) == (n + n + 1) * 8

    def test_level_out_of_range(self):
        nest = build_gemm(8).nests[0]
        with pytest.raises(ValueError):
            working_set_bytes(nest, 3)

    def test_indirect_charged_full_array(self):
        b = KernelBuilder("t", Language.C)
        b.array("x", (1000,))
        b.array("y", (10,))
        nest = b.nest(
            [("i", 10)],
            [b.stmt(write("y", "i"), read("x", "i", indirect=True), fadd=1)],
        )
        assert working_set_bytes(nest, 0) == 1000 * 8 + 10 * 8


class TestScop:
    def test_gemm_is_scop(self):
        assert is_scop(build_gemm(16))

    def test_indirect_breaks_scop(self):
        b = KernelBuilder("t", Language.C)
        b.array("x", (32,))
        b.array("y", (32,))
        b.nest([("i", 32)], [b.stmt(write("y", "i"), read("x", "i", indirect=True))])
        assert not is_scop(b.build())

    def test_predication_breaks_scop(self):
        b = KernelBuilder("t", Language.C)
        b.array("y", (32,))
        b.nest([("i", 32)], [b.stmt(update("y", "i"), predicated=True, fadd=1)])
        assert not is_scop(b.build())

    @pytest.mark.parametrize(
        "feature",
        [Feature.NON_AFFINE, Feature.RECURSIVE, Feature.POINTER_CHASING, Feature.BRANCH_HEAVY],
    )
    def test_breaker_features(self, feature):
        b = KernelBuilder("t", Language.C)
        b.array("y", (32,))
        b.nest([("i", 32)], [b.stmt(update("y", "i"), fadd=1)])
        assert not is_scop(b.build(feature))

    def test_needs_inlining_does_not_break_scop(self):
        b = KernelBuilder("t", Language.C)
        b.array("y", (32,))
        b.nest([("i", 32)], [b.stmt(update("y", "i"), fadd=1)])
        assert is_scop(b.build(Feature.NEEDS_INLINING))


class TestReusePotential:
    def test_matmul_has_high_reuse(self):
        assert reuse_potential(build_gemm(64).nests[0]) > 0.9

    def test_stream_has_low_reuse(self):
        b = KernelBuilder("t", Language.C)
        b.array("a", (1024,))
        b.array("bb", (1024,))
        nest = b.nest([("i", 1024)], [b.stmt(write("a", "i"), read("bb", "i"), fadd=1)])
        assert reuse_potential(nest) < 0.4
