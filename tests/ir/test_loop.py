"""Tests for loops and loop nests."""

import pytest

from repro.errors import IRError, UnknownLoopError
from repro.ir import KernelBuilder, Language, Loop, LoopNest, read, update, write


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", 0, 10).trip_count == 10
        assert Loop("i", 2, 10).trip_count == 8
        assert Loop("i", 0, 10, 3).trip_count == 4

    def test_empty_range(self):
        assert Loop("i", 5, 5).trip_count == 0
        assert Loop("i", 7, 3).trip_count == 0

    def test_zero_step_rejected(self):
        with pytest.raises(IRError):
            Loop("i", 0, 4, 0)

    def test_negative_step_rejected(self):
        with pytest.raises(IRError):
            Loop("i", 4, 0, -1)

    def test_unnamed_rejected(self):
        with pytest.raises(IRError):
            Loop("", 0, 4)

    def test_with_bounds(self):
        l = Loop("i", 0, 10).with_bounds(2, 6)
        assert (l.lower, l.upper) == (2, 6)

    def test_str_shows_parallel(self):
        assert "parallel" in str(Loop("i", 0, 4, parallel=True))


def _nest(n=8):
    b = KernelBuilder("t", Language.C)
    b.array("A", (n, n))
    b.array("B", (n, n))
    return b.nest(
        [("i", n), ("j", n)],
        [b.stmt(write("A", "i", "j"), read("B", "i", "j"), fadd=1)],
    )


class TestLoopNest:
    def test_depth_and_vars(self):
        nest = _nest()
        assert nest.depth == 2
        assert nest.loop_vars == ("i", "j")
        assert nest.innermost.var == "j"
        assert nest.outermost.var == "i"

    def test_iterations(self):
        assert _nest(8).iterations == 64

    def test_loop_index(self):
        nest = _nest()
        assert nest.loop_index("j") == 1
        with pytest.raises(UnknownLoopError):
            nest.loop_index("z")

    def test_duplicate_vars_rejected(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (4, 4))
        with pytest.raises(IRError):
            b.nest([("i", 4), ("i", 4)], [b.stmt(write("A", "i", "i"))])

    def test_unbound_statement_var_rejected(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (4, 4))
        with pytest.raises(UnknownLoopError):
            b.nest([("i", 4)], [b.stmt(write("A", "i", "j"))])

    def test_empty_body_rejected(self):
        with pytest.raises(IRError):
            LoopNest((Loop("i", 0, 4),), ())

    def test_permuted(self):
        nest = _nest()
        p = nest.permuted(("j", "i"))
        assert p.loop_vars == ("j", "i")
        # body untouched
        assert p.body == nest.body

    def test_permuted_rejects_wrong_vars(self):
        with pytest.raises(IRError):
            _nest().permuted(("i", "z"))

    def test_flops(self):
        nest = _nest(8)
        assert nest.flops_per_iteration() == 1
        assert nest.total_flops() == 64

    def test_arrays_deduplicated(self):
        nest = _nest()
        assert sorted(a.name for a in nest.arrays) == ["A", "B"]

    def test_accesses_flattened(self):
        assert len(_nest().accesses) == 2
