"""Tests for kernel JSON serialization."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Feature,
    kernel_from_dict,
    kernel_from_json,
    kernel_to_dict,
    kernel_to_json,
)
from repro.suites.kernels_common import particle_force, spmv_csr, stream_triad
from repro.suites.polybench_la import two_mm
from tests.conftest import build_gemm


class TestRoundTrip:
    @pytest.mark.parametrize(
        "kernel_factory",
        [
            lambda: build_gemm(64),
            lambda: two_mm(),
            lambda: stream_triad("rt_triad", 128),
            lambda: spmv_csr("rt_spmv", 64, 4),
            lambda: particle_force("rt_force", 64, 8),
        ],
    )
    def test_roundtrip_preserves_semantics(self, kernel_factory):
        kernel = kernel_factory()
        rebuilt = kernel_from_json(kernel_to_json(kernel))
        assert rebuilt.name == kernel.name
        assert rebuilt.language == kernel.language
        assert rebuilt.features == kernel.features
        assert len(rebuilt.nests) == len(kernel.nests)
        for a, b in zip(kernel.nests, rebuilt.nests):
            assert a.loop_vars == b.loop_vars
            assert a.trip_counts() == b.trip_counts()
            assert len(a.body) == len(b.body)
        assert rebuilt.total_flops() == kernel.total_flops()
        assert rebuilt.data_footprint_bytes == kernel.data_footprint_bytes

    def test_roundtrip_preserves_compilation(self, a64fx_machine):
        from repro.compilers import compile_kernel

        kernel = build_gemm(128)
        rebuilt = kernel_from_json(kernel_to_json(kernel))
        a = compile_kernel("LLVM", kernel, a64fx_machine)
        b = compile_kernel("LLVM", rebuilt, a64fx_machine)
        assert a.nest_infos[0].nest.loop_vars == b.nest_infos[0].nest.loop_vars
        assert a.nest_infos[0].vec_efficiency == b.nest_infos[0].vec_efficiency

    def test_parallel_flag_survives(self):
        kernel = stream_triad("rt_par", 64)
        rebuilt = kernel_from_json(kernel_to_json(kernel))
        assert rebuilt.nests[0].loops[0].parallel
        assert Feature.OPENMP in rebuilt.features


class TestValidation:
    def test_unknown_schema_rejected(self):
        doc = kernel_to_dict(build_gemm(16))
        doc["schema"] = 99
        with pytest.raises(IRError):
            kernel_from_dict(doc)

    def test_missing_field_rejected(self):
        doc = kernel_to_dict(build_gemm(16))
        del doc["arrays"]
        with pytest.raises(IRError):
            kernel_from_dict(doc)

    def test_bad_dtype_rejected(self):
        doc = kernel_to_dict(build_gemm(16))
        doc["arrays"][0]["dtype"] = "f128"
        with pytest.raises(IRError):
            kernel_from_dict(doc)

    def test_bad_language_rejected(self):
        doc = kernel_to_dict(build_gemm(16))
        doc["language"] = "COBOL"
        with pytest.raises(IRError):
            kernel_from_dict(doc)
