"""Edge cases for the dependence analysis: reversed (negative-stride)
traversals, coupled subscripts, zero-trip loops, and interchange
legality on triangularly-coupled dependence patterns.

These pin down the conservative behaviour the static analyzer
(:mod:`repro.staticanalysis`) builds on: a may-dependence must never be
silently dropped, and a proven distance must carry the right sign.
"""

import pytest

from repro.ir import (
    DepKind,
    Direction,
    KernelBuilder,
    Language,
    carried_dependences,
    innermost_vectorization_legality,
    nest_dependences,
    permutation_legal,
    read,
    write,
)


def _builder(name="edge"):
    b = KernelBuilder(name, Language.C)
    b.array("A", (16,))
    b.array("B", (16,))
    b.array("G", (16, 16))
    return b


class TestNegativeStride:
    """Subscripts that walk arrays backwards (coefficient -1)."""

    def test_reversed_copy_has_no_dependence(self):
        # B[i] = A[15-i]: distinct arrays, no dependence at all.
        b = _builder()
        nest = b.nest(
            [("i", 16)],
            [b.stmt(write("B", "i"), read("A", "15-i"), fadd=1)],
        )
        assert nest_dependences(nest) == ()

    def test_reversed_recurrence_direction(self):
        # A[15-i] = f(A[16-i]): iteration i+1 reads what iteration i
        # wrote (15-i == 16-(i+1)), a flow dependence carried forward
        # even though both accesses walk the array backwards.
        b = _builder()
        nest = b.nest(
            [("i", 15)],
            [b.stmt(write("A", "15-i"), read("A", "16-i"), fadd=1)],
        )
        deps = nest_dependences(nest)
        flows = [d for d in deps if d.kind is DepKind.FLOW]
        assert flows, "reversed recurrence must report a flow dependence"
        assert any(d.directions[0] is Direction.LT for d in flows)
        # The proven distance must be +1 in iteration space, not -1 in
        # address space.
        assert any(d.distances[0] == 1 for d in flows if d.distances[0] is not None)

    def test_array_reversal_in_place_is_conservative(self):
        # A[i] = A[15-i]: a weak-crossing pair meeting mid-array.  The
        # analysis may not prove the exact crossing point, but it must
        # report *some* dependence rather than declaring independence.
        b = _builder()
        nest = b.nest(
            [("i", 16)],
            [b.stmt(write("A", "i"), read("A", "15-i"), fadd=1)],
        )
        assert nest_dependences(nest), "crossing pair must not be dropped"


class TestCoupledSubscripts:
    """MIV subscripts mixing several loop variables (A[i+j])."""

    def test_diagonal_recurrence_reported(self):
        b = _builder()
        b.array("D", (40,))
        nest = b.nest(
            [("i", 16), ("j", 16)],
            [b.stmt(write("D", "i+j"), read("D", "i+j-1"), fadd=1)],
        )
        deps = nest_dependences(nest)
        flows = [d for d in deps if d.kind is DepKind.FLOW]
        assert flows, "anti-diagonal recurrence must carry a flow dependence"

    def test_diagonal_recurrence_blocks_vectorization(self):
        # The same element D[i+j] is touched along every anti-diagonal,
        # so vectorizing j is illegal; a sound analysis must not claim
        # otherwise.
        b = _builder()
        b.array("D", (40,))
        nest = b.nest(
            [("i", 16), ("j", 16)],
            [b.stmt(write("D", "i+j"), read("D", "i+j-1"), fadd=1)],
        )
        verdict = innermost_vectorization_legality(nest)
        assert not verdict.legal

    def test_coupled_interchange_rejected(self):
        # The anti-diagonal recurrence has a genuine (<, >) crossing —
        # e.g. (i=2, j=4) writes D[6], (i=3, j=3) reads it — so
        # interchanging (i, j) would reverse a dependence and must be
        # rejected.
        b = _builder()
        b.array("D", (40,))
        nest = b.nest(
            [("i", 16), ("j", 16)],
            [b.stmt(write("D", "i+j"), read("D", "i+j-1"), fadd=1)],
        )
        deps = nest_dependences(nest)
        assert permutation_legal(deps, nest.loop_vars, ("i", "j"))
        assert not permutation_legal(deps, nest.loop_vars, ("j", "i"))


class TestZeroTripLoops:
    """Loops whose range is empty execute nothing and carry nothing."""

    def test_zero_trip_loop_has_no_dependences(self):
        b = _builder()
        nest = b.nest(
            [("i", 0)],
            [b.stmt(write("A", "i"), read("A", "i-1"), fadd=1)],
        )
        assert nest.loops[0].trip_count == 0
        assert nest_dependences(nest) == ()

    def test_zero_trip_inner_loop(self):
        b = _builder()
        nest = b.nest(
            [("i", 16), ("j", 4, 4)],
            [b.stmt(write("G", "i", "j"), read("G", "i-1", "j"), fadd=1)],
        )
        assert nest.loops[1].trip_count == 0
        assert nest_dependences(nest) == ()


class TestTriangularInterchange:
    """Interchange legality with triangularly-coupled direction vectors."""

    def _skewed_nest(self):
        # G[i][j] = f(G[i-1][j+1]): distance (+1, -1), directions
        # (<, >) — the canonical "legal as written, illegal when
        # interchanged" pattern (wavefront/triangular coupling).
        b = _builder()
        return b.nest(
            [("i", 1, 16), ("j", 0, 15)],
            [b.stmt(write("G", "i", "j"), read("G", "i-1", "j+1"), fadd=1)],
        )

    def test_skewed_dependence_vector(self):
        deps = nest_dependences(self._skewed_nest())
        flows = [d for d in deps if d.kind is DepKind.FLOW]
        assert flows
        assert any(
            d.directions == (Direction.LT, Direction.GT) for d in flows
        )

    def test_interchange_reverses_skewed_dependence(self):
        nest = self._skewed_nest()
        deps = nest_dependences(nest)
        assert permutation_legal(deps, nest.loop_vars, ("i", "j"))
        assert not permutation_legal(deps, nest.loop_vars, ("j", "i"))

    def test_skewed_dependence_carried_outermost(self):
        deps = nest_dependences(self._skewed_nest())
        assert carried_dependences(deps, 0)
        flows = [d for d in deps if d.kind is DepKind.FLOW]
        assert all(d.carried_level() == 0 for d in flows)
