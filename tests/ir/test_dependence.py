"""Tests for the dependence analysis — the legality engine behind the
compiler models."""

import pytest

from repro.ir import (
    DepKind,
    Direction,
    KernelBuilder,
    Language,
    carried_dependences,
    innermost_vectorization_legality,
    nest_dependences,
    permutation_legal,
    read,
    update,
    write,
)
from tests.conftest import build_gemm


def _single_nest(builder_fn):
    return builder_fn().nests[0]


def gemm_nest(n=32):
    return build_gemm(n).nests[0]


class TestGemm:
    """The canonical reduction nest: C[i][j] += A[i][k] * B[k][j]."""

    def test_reduction_dep_vector(self):
        deps = nest_dependences(gemm_nest())
        flows = [d for d in deps if d.kind is DepKind.FLOW]
        assert flows, "gemm must carry a flow dependence on C"
        for d in flows:
            assert d.directions == (Direction.EQ, Direction.EQ, Direction.LT)
            assert d.is_reduction

    def test_all_interchanges_legal(self):
        # Reordering a pure reduction nest never reverses the k-chain.
        nest = gemm_nest()
        deps = nest_dependences(nest)
        for order in [("i", "k", "j"), ("k", "i", "j"), ("j", "i", "k")]:
            assert permutation_legal(deps, nest.loop_vars, order)

    def test_vectorization_needs_reassociation_with_k_inner(self):
        verdict = innermost_vectorization_legality(gemm_nest())
        assert verdict.legal
        assert verdict.needs_reduction_reassociation

    def test_vectorization_free_with_j_inner(self):
        nest = gemm_nest().permuted(("i", "k", "j"))
        verdict = innermost_vectorization_legality(nest)
        assert verdict.legal
        assert not verdict.needs_reduction_reassociation


class TestOverwrite:
    """Overwrites: the last writer must stay last."""

    def _nest_1free(self):
        b = KernelBuilder("ow", Language.C)
        b.array("C", (16,))
        b.array("A", (16, 16))
        return b.nest(
            [("i", 16), ("k", 16)],
            [b.stmt(write("C", "i"), read("A", "i", "k"), fadd=1)],
        )

    def _nest_2free(self):
        b = KernelBuilder("ow2", Language.C)
        b.array("C", (16,))
        b.array("A", (16, 16, 16))
        return b.nest(
            [("i", 16), ("k", 16), ("l", 16)],
            [b.stmt(write("C", "i"), read("A", "i", "k", "l"), fadd=1)],
        )

    def test_output_dep_exists(self):
        deps = nest_dependences(self._nest_1free())
        assert any(d.kind is DepKind.OUTPUT for d in deps)

    def test_single_free_loop_interchange_legal(self):
        # With one overwriting loop, interchange preserves the per-element
        # write order (k still ascends for every i) — legal.
        nest = self._nest_1free()
        deps = nest_dependences(nest)
        assert permutation_legal(deps, ("i", "k"), ("k", "i"), allow_reduction_reorder=False)

    def test_two_free_loops_interchange_illegal(self):
        # Swapping k and l reorders the writes to C[i]: the (=,<,>)
        # dependence vector becomes lexicographically negative.
        nest = self._nest_2free()
        deps = nest_dependences(nest)
        assert not permutation_legal(
            deps, ("i", "k", "l"), ("i", "l", "k"), allow_reduction_reorder=False
        )


class TestStencils:
    def test_jacobi_two_arrays_no_loop_carried(self):
        b = KernelBuilder("jac", Language.C)
        b.array("A", (64,))
        b.array("B", (64,))
        nest = b.nest(
            [("i", 1, 63)],
            [b.stmt(write("B", "i"), read("A", "i-1"), read("A", "i+1"), fadd=1)],
        )
        verdict = innermost_vectorization_legality(nest)
        assert verdict.legal and not verdict.needs_reduction_reassociation

    def test_seidel_inplace_blocked(self):
        b = KernelBuilder("sei", Language.C)
        b.array("A", (64,))
        nest = b.nest(
            [("i", 1, 63)],
            [b.stmt(write("A", "i"), read("A", "i-1"), read("A", "i+1"), fadd=1)],
        )
        verdict = innermost_vectorization_legality(nest)
        assert not verdict.legal
        assert verdict.blockers

    def test_carried_level_of_stencil_recurrence(self):
        b = KernelBuilder("rec", Language.C)
        b.array("A", (32, 32))
        nest = b.nest(
            [("i", 1, 32), ("j", 32)],
            [b.stmt(write("A", "i", "j"), read("A", "i-1", "j"), fadd=1)],
        )
        deps = nest_dependences(nest)
        carried_outer = carried_dependences(deps, 0)
        carried_inner = carried_dependences(deps, 1)
        assert carried_outer
        assert not carried_inner  # distance is exactly (1, 0)


class TestSubscriptTests:
    def test_ziv_disproves(self):
        b = KernelBuilder("ziv", Language.C)
        b.array("A", (16, 4))
        nest = b.nest(
            [("i", 16)],
            [b.stmt(write("A", "i", 0), read("A", "i", 1))],
        )
        assert nest_dependences(nest) == ()

    def test_gcd_disproves(self):
        # A[2i] vs A[2i+1]: even vs odd elements never alias.
        b = KernelBuilder("gcd", Language.C)
        b.array("A", (64,))
        nest = b.nest(
            [("i", 32)],
            [b.stmt(write("A", "2*i"), read("A", "2*i+1"))],
        )
        assert nest_dependences(nest) == ()

    def test_strong_siv_distance_beyond_trip_disproves(self):
        b = KernelBuilder("siv", Language.C)
        b.array("A", (128,))
        nest = b.nest(
            [("i", 8)],
            [b.stmt(write("A", "i"), read("A", "i+64"))],
        )
        assert nest_dependences(nest) == ()

    def test_strong_siv_in_range_detected(self):
        b = KernelBuilder("siv2", Language.C)
        b.array("A", (128,))
        nest = b.nest(
            [("i", 1, 64)],
            [b.stmt(write("A", "i"), read("A", "i-1"))],
        )
        deps = nest_dependences(nest)
        assert deps
        assert all(d.distances == (1,) for d in deps)

    def test_weak_zero_in_range(self):
        # A[0] read against A[i] writes: only i == 0 aliases.
        b = KernelBuilder("wz", Language.C)
        b.array("A", (32,))
        b.array("B", (32,))
        nest = b.nest(
            [("i", 32)],
            [b.stmt(write("A", "i"), read("A", 0), read("B", "i"), fadd=1)],
        )
        assert nest_dependences(nest)

    def test_weak_zero_out_of_range_disproved(self):
        b = KernelBuilder("wz2", Language.C)
        b.array("A", (128,))
        b.array("B", (32,))
        nest = b.nest(
            [("i", 32)],
            [b.stmt(write("A", "i"), read("A", 100), read("B", "i"), fadd=1)],
        )
        # write A[i] (i<32) never reaches A[100]
        assert all(d.array != "A" or d.kind is not DepKind.FLOW for d in nest_dependences(nest))

    def test_conflicting_fixed_distances_disprove(self):
        # A[i][i] vs A[i][i+1]: dim0 demands 0, dim1 demands 1 -> none.
        b = KernelBuilder("conf", Language.C)
        b.array("A", (16, 17))
        nest = b.nest(
            [("i", 16)],
            [b.stmt(write("A", "i", "i"), read("A", "i", "i+1"))],
        )
        assert nest_dependences(nest) == ()


class TestIndirect:
    def test_indirect_conservative(self):
        b = KernelBuilder("ind", Language.C)
        b.array("x", (64,))
        nest = b.nest(
            [("i", 64)],
            [b.stmt(update("x", "i", indirect=True), iops=1)],
        )
        deps = nest_dependences(nest)
        assert deps
        assert all(all(d is Direction.ANY for d in dep.directions) for dep in deps)

    def test_indirect_forces_runtime_checks(self):
        b = KernelBuilder("ind2", Language.C)
        b.array("x", (64,))
        b.array("y", (64,))
        nest = b.nest(
            [("i", 64)],
            [b.stmt(write("y", "i"), read("x", "i", indirect=True), fadd=1)],
        )
        verdict = innermost_vectorization_legality(nest)
        # reads-only indirect stream: no blocking dep, but y/x unrelated
        assert verdict.legal


class TestNormalization:
    def test_no_lexicographically_negative_vectors(self):
        for nest in (gemm_nest(), build_gemm(16).nests[0].permuted(("k", "j", "i"))):
            for dep in nest_dependences(nest):
                for d in dep.directions:
                    if d is Direction.EQ:
                        continue
                    assert d in (Direction.LT, Direction.ANY)
                    break

    def test_loop_independent_detected(self):
        b = KernelBuilder("li", Language.C)
        b.array("A", (16,))
        b.array("B", (16,))
        nest = b.nest(
            [("i", 16)],
            [
                b.stmt(write("A", "i"), read("B", "i")),
                b.stmt(write("B", "i"), read("A", "i")),
            ],
        )
        deps = nest_dependences(nest)
        assert any(d.is_loop_independent for d in deps)
        assert all(d.carried_level() is None for d in deps if d.is_loop_independent)
