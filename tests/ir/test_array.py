"""Tests for arrays and accesses."""

import pytest

from repro.errors import IRError
from repro.ir import Access, AccessKind, AffineExpr, Array, DType, Layout, footprint_bytes


def _acc(array, *idx, kind=AccessKind.READ, indirect=False):
    return Access(array, tuple(AffineExpr.parse(i) for i in idx), kind, indirect)


class TestArray:
    def test_basic(self):
        a = Array("A", (10, 20))
        assert a.rank == 2
        assert a.elements == 200
        assert a.nbytes == 1600

    def test_scalar(self):
        s = Array("s", ())
        assert s.rank == 0
        assert s.elements == 1
        assert s.nbytes == 8

    def test_rejects_empty_name(self):
        with pytest.raises(IRError):
            Array("", (4,))

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(IRError):
            Array("A", (4, 0))

    def test_linear_strides_follow_layout(self):
        assert Array("A", (3, 4)).linear_strides == (4, 1)
        assert Array("A", (3, 4), layout=Layout.COL_MAJOR).linear_strides == (1, 3)

    def test_dtype_bytes(self):
        assert Array("c", (10,), DType.I32).nbytes == 40


class TestAccess:
    def test_subscript_arity_checked(self):
        a = Array("A", (4, 4))
        with pytest.raises(IRError):
            _acc(a, "i")

    def test_row_major_stride(self):
        a = Array("A", (100, 50))
        acc = _acc(a, "i", "j")
        assert acc.element_stride("j") == 1
        assert acc.element_stride("i") == 50
        assert acc.byte_stride("i") == 400

    def test_col_major_stride(self):
        a = Array("A", (100, 50), layout=Layout.COL_MAJOR)
        acc = _acc(a, "i", "j")
        assert acc.element_stride("i") == 1
        assert acc.element_stride("j") == 100

    def test_coefficient_scales_stride(self):
        a = Array("A", (100,))
        assert _acc(a, "2*i").element_stride("i") == 2

    def test_transposed_access_stride(self):
        a = Array("A", (64, 64))
        acc = _acc(a, "j", "i")  # A[j][i]
        assert acc.element_stride("i") == 1
        assert acc.element_stride("j") == 64

    def test_invariant(self):
        a = Array("A", (8, 8))
        acc = _acc(a, "i", "j")
        assert acc.is_invariant("k")
        assert not acc.is_invariant("i")

    def test_indirect_never_invariant(self):
        a = Array("x", (128,))
        acc = _acc(a, "i", indirect=True)
        assert not acc.is_invariant("k")

    def test_indirect_pessimistic_stride(self):
        a = Array("A", (16, 16))
        acc = _acc(a, "i", "j", indirect=True)
        assert acc.element_stride("j") == 16  # leading extent proxy

    def test_linearized(self):
        a = Array("A", (10, 4))
        acc = _acc(a, "i", "j+1")
        assert acc.linearized() == AffineExpr.parse("4*i + j + 1")

    def test_rename(self):
        a = Array("A", (10, 4))
        acc = _acc(a, "i", "j").rename({"i": "x"})
        assert acc.indices[0] == AffineExpr.var("x")

    def test_substitute(self):
        a = Array("A", (10,))
        acc = _acc(a, "i").substitute("i", AffineExpr.parse("2*k"))
        assert acc.element_stride("k") == 2

    def test_with_kind(self):
        a = Array("A", (10,))
        assert _acc(a, "i").with_kind(AccessKind.WRITE).kind is AccessKind.WRITE


class TestFootprint:
    def test_distinct_arrays_counted_once(self):
        a = Array("A", (100,))
        b = Array("B", (50,))
        accesses = [_acc(a, "i"), _acc(a, "i+1"), _acc(b, "i")]
        assert footprint_bytes(accesses) == 100 * 8 + 50 * 8

    def test_empty(self):
        assert footprint_bytes([]) == 0
