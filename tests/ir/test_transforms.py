"""Tests for concrete loop transformations, including trace-validated
tiling — the strongest end-to-end check of the IR + cache machinery."""

import pytest

from repro.compilers.base import CodegenNestInfo
from repro.errors import TransformError
from repro.ir import KernelBuilder, Language, read, update, write
from repro.ir.transforms import interchange, strip_mine, tile
from repro.perf.trace import trace_traffic
from repro.perf.traffic import nest_traffic
from tests.conftest import build_gemm


class TestInterchange:
    def test_legal_interchange(self):
        nest = build_gemm(16).nests[0]
        out = interchange(nest, ("i", "k", "j"))
        assert out.loop_vars == ("i", "k", "j")

    def test_illegal_interchange_rejected(self):
        from repro.suites.kernels_common import seidel_sweep

        nest = seidel_sweep("s", 16).nests[0]
        with pytest.raises(TransformError):
            interchange(nest, ("j", "i"))


class TestStripMine:
    def test_preserves_iteration_count_and_flops(self):
        nest = build_gemm(32).nests[0]
        out = strip_mine(nest, "i", 8)
        assert out.depth == 4
        assert out.iterations == nest.iterations
        assert out.total_flops() == nest.total_flops()

    def test_addresses_identical(self):
        """Strip-mining is semantically neutral: the exact multiset of
        addresses (indeed the exact sequence) is unchanged."""
        from repro.perf.trace import iterate_addresses

        nest = build_gemm(8).nests[0]
        out = strip_mine(nest, "j", 4)
        original = list(iterate_addresses(nest))
        mined = list(iterate_addresses(out))
        assert original == mined

    def test_nonunit_lower_bound(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (40,))
        nest = b.nest([("i", 8, 40)], [b.stmt(update("A", "i"), fadd=1)])
        out = strip_mine(nest, "i", 8)
        from repro.perf.trace import iterate_addresses

        assert list(iterate_addresses(nest)) == list(iterate_addresses(out))

    def test_indivisible_rejected(self):
        nest = build_gemm(30).nests[0]
        with pytest.raises(TransformError):
            strip_mine(nest, "i", 8)

    def test_bad_factor_rejected(self):
        nest = build_gemm(16).nests[0]
        with pytest.raises(TransformError):
            strip_mine(nest, "i", 1)

    def test_name_collision_rejected(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (8, 8))
        nest = b.nest([("i", 8), ("i_t", 8)], [b.stmt(update("A", "i", "i_t"), fadd=1)])
        with pytest.raises(TransformError):
            strip_mine(nest, "i", 4)


class TestTile:
    def test_tiled_gemm_structure(self):
        nest = build_gemm(32).nests[0]
        out = tile(nest, {"i": 8, "j": 8, "k": 8})
        assert out.depth == 6
        assert out.loop_vars[:3] == ("i_t", "j_t", "k_t")
        assert out.iterations == nest.iterations

    def test_untileable_band_rejected(self):
        # Gauss-Seidel 9-point: not fully permutable.
        from repro.suites.kernels_common import seidel_sweep

        nest = seidel_sweep("s", 18).nests[0]
        with pytest.raises(TransformError):
            tile(nest, {"i": 4, "j": 4})

    def test_tiling_cuts_real_cache_misses(self):
        """Ground truth: tile a matmul that thrashes a small cache and
        replay the exact address stream — the tiled version must pull
        far fewer bytes from memory."""
        import sys

        sys.path.insert(0, "tests")
        from tests.perf.test_traffic import tiny_machine

        machine = tiny_machine(l1_kib=4, l2_kib=16)
        nest = build_gemm(64).nests[0]  # 3 x 32 KiB matrices >> 16 KiB L2
        tiled = tile(nest, {"i": 16, "j": 16, "k": 16})

        plain_trace = trace_traffic(nest, machine.cache_levels)
        tiled_trace = trace_traffic(tiled, machine.cache_levels)
        assert tiled_trace.memory_bytes < plain_trace.memory_bytes / 2

    def test_analytic_model_prices_tiled_nest(self):
        """The layer-condition model, given the *actually rewritten*
        nest (no tile_working_set hint), must agree with the trace."""
        import sys

        sys.path.insert(0, "tests")
        from tests.perf.test_traffic import tiny_machine

        machine = tiny_machine(l1_kib=4, l2_kib=16)
        tiled = tile(build_gemm(64).nests[0], {"i": 16, "j": 16, "k": 16})
        analytic = nest_traffic(CodegenNestInfo(nest=tiled), machine)
        traced = trace_traffic(tiled, machine.cache_levels)
        assert analytic.memory_bytes == pytest.approx(traced.memory_bytes, rel=0.7)

    def test_tile_matches_polly_abstraction(self, a64fx_machine):
        """The Polly pass's tile_working_set shortcut and a real tiling
        of equivalent block size should land in the same traffic
        regime (within ~3x), tying the abstraction to the rewrite."""
        nest = build_gemm(1024).nests[0].permuted(("i", "k", "j"))
        real = tile(nest, {"i": 128, "k": 128, "j": 128})
        t_real = nest_traffic(CodegenNestInfo(nest=real), a64fx_machine).memory_bytes
        t_abstract = nest_traffic(
            CodegenNestInfo(nest=nest, tile_working_set=3 * 128 * 128 * 8),
            a64fx_machine,
        ).memory_bytes
        assert t_abstract / 3 <= t_real <= t_abstract * 3
