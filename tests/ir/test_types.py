"""Tests for DType/Language/Layout/AccessKind."""

import pytest

from repro.ir import AccessKind, DType, Language, Layout


class TestDType:
    @pytest.mark.parametrize(
        "dtype,size", [(DType.F64, 8), (DType.F32, 4), (DType.I64, 8), (DType.I32, 4), (DType.I16, 2), (DType.I8, 1)]
    )
    def test_sizes(self, dtype, size):
        assert dtype.size == size

    def test_float_flags(self):
        assert DType.F64.is_float and DType.F32.is_float
        assert not DType.I64.is_float and not DType.I8.is_float


class TestLanguage:
    def test_fortran_defaults_col_major(self):
        assert Language.FORTRAN.default_layout is Layout.COL_MAJOR

    @pytest.mark.parametrize("lang", [Language.C, Language.CXX, Language.MIXED])
    def test_c_family_defaults_row_major(self, lang):
        assert lang.default_layout is Layout.ROW_MAJOR


class TestLayout:
    def test_row_major_strides(self):
        assert Layout.ROW_MAJOR.linear_strides((4, 5, 6)) == (30, 6, 1)

    def test_col_major_strides(self):
        assert Layout.COL_MAJOR.linear_strides((4, 5, 6)) == (1, 4, 20)

    def test_1d_strides(self):
        assert Layout.ROW_MAJOR.linear_strides((9,)) == (1,)
        assert Layout.COL_MAJOR.linear_strides((9,)) == (1,)

    def test_scalar_strides(self):
        assert Layout.ROW_MAJOR.linear_strides(()) == ()

    def test_strides_cover_all_elements(self):
        # max address + 1 == number of elements for contiguous layouts
        shape = (3, 7, 2)
        for layout in (Layout.ROW_MAJOR, Layout.COL_MAJOR):
            strides = layout.linear_strides(shape)
            max_addr = sum((d - 1) * s for d, s in zip(shape, strides))
            assert max_addr + 1 == 3 * 7 * 2


class TestAccessKind:
    def test_read(self):
        assert AccessKind.READ.reads and not AccessKind.READ.writes

    def test_write(self):
        assert AccessKind.WRITE.writes and not AccessKind.WRITE.reads

    def test_update_is_both(self):
        assert AccessKind.UPDATE.reads and AccessKind.UPDATE.writes
