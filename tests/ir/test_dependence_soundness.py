"""Soundness of the dependence analysis against brute-force enumeration.

For randomly generated small affine nests, enumerate every pair of
iterations, detect actual memory conflicts (same address, at least one
write), and verify each one is *covered* by some computed dependence:
a dependence whose direction vector admits the observed iteration
delta.  The analysis may over-approximate (report dependences that
never materialize — that is its conservative licence) but must never
miss a real one, because a missed dependence means an illegal compiler
transformation would be declared legal.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    AccessKind,
    AffineExpr,
    Direction,
    KernelBuilder,
    Language,
    nest_dependences,
)
from repro.ir.builder import AccessSpec


def _admits(direction: Direction, delta: int) -> bool:
    if direction is Direction.ANY:
        return True
    if direction is Direction.EQ:
        return delta == 0
    if direction is Direction.LT:
        return delta > 0
    return delta < 0


def _covered(deps, src_name, dst_name, array, delta: tuple) -> bool:
    """Is the observed (src stmt -> dst stmt, delta) conflict covered?

    Deltas are normalized by the analysis (lexicographically negative
    vectors describe the mirrored pair), so check both orientations.
    """
    neg = tuple(-d for d in delta)
    for dep in deps:
        if dep.array != array:
            continue
        pairs = {(dep.src.name, dep.dst.name), (dep.dst.name, dep.src.name)}
        if (src_name, dst_name) not in pairs:
            continue
        if all(_admits(dv, d) for dv, d in zip(dep.directions, delta)):
            return True
        if all(_admits(dv, d) for dv, d in zip(dep.directions, neg)):
            return True
    return False


def _brute_force_check(nest) -> None:
    """Assert every actual conflict in ``nest`` is covered."""
    deps = nest_dependences(nest)
    loops = nest.loops
    spaces = [range(l.lower, l.upper, l.step) for l in loops]
    names = [l.var for l in loops]

    # Materialize every access of every iteration: (stmt, array, addr, writes)
    touched: list[tuple[tuple, str, str, int, bool]] = []
    for point in itertools.product(*spaces):
        env = dict(zip(names, point))
        for stmt in nest.body:
            for acc in stmt.accesses:
                if acc.indirect:
                    continue
                addr = acc.linearized().evaluate(env)
                touched.append((point, stmt.name, acc.array.name, addr, acc.kind.writes))

    for (p1, s1, a1, addr1, w1), (p2, s2, a2, addr2, w2) in itertools.combinations(touched, 2):
        if a1 != a2 or addr1 != addr2 or not (w1 or w2):
            continue
        if p1 == p2 and s1 == s2:
            continue  # same statement instance
        delta = tuple(b - a for a, b in zip(p1, p2))
        assert _covered(deps, s1, s2, a1, delta), (
            f"uncovered conflict on {a1}@{addr1}: {s1}{p1} vs {s2}{p2}"
        )


# -- deterministic regression nests -----------------------------------------


class TestKnownNests:
    def test_inplace_shift(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (12,))
        nest = b.nest([("i", 1, 11)], [b.stmt(AccessSpec("A", ("i",), AccessKind.WRITE), AccessSpec("A", ("i-1",), AccessKind.READ))])
        _brute_force_check(nest)

    def test_two_statement_pipeline(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (10,))
        b.array("B", (10,))
        nest = b.nest(
            [("i", 10)],
            [
                b.stmt(AccessSpec("A", ("i",), AccessKind.WRITE), AccessSpec("B", ("i",), AccessKind.READ)),
                b.stmt(AccessSpec("B", ("i",), AccessKind.WRITE), AccessSpec("A", ("i",), AccessKind.READ)),
            ],
        )
        _brute_force_check(nest)

    def test_2d_diagonal(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (8, 8))
        nest = b.nest(
            [("i", 1, 7), ("j", 1, 7)],
            [
                b.stmt(
                    AccessSpec("A", ("i", "j"), AccessKind.WRITE),
                    AccessSpec("A", ("i+1", "j-1"), AccessKind.READ),
                )
            ],
        )
        _brute_force_check(nest)

    def test_coupled_subscripts(self):
        b = KernelBuilder("t", Language.C)
        b.array("A", (20,))
        nest = b.nest(
            [("i", 6), ("j", 3)],
            [
                b.stmt(
                    AccessSpec("A", ("2*i+j",), AccessKind.WRITE),
                    AccessSpec("A", ("i+2*j",), AccessKind.READ),
                )
            ],
        )
        _brute_force_check(nest)

    def test_reduction_scalar(self):
        b = KernelBuilder("t", Language.C)
        b.array("s", (1,))
        b.array("x", (9,))
        nest = b.nest(
            [("i", 9)],
            [
                b.stmt(
                    AccessSpec("s", (0,), AccessKind.UPDATE),
                    AccessSpec("x", ("i",), AccessKind.READ),
                    reduction="i",
                    fadd=1,
                )
            ],
        )
        _brute_force_check(nest)


# -- randomized nests ----------------------------------------------------------

_coeff = st.integers(-2, 2)
_const = st.integers(-2, 4)


@st.composite
def random_1d_nest(draw):
    """A 1-2 deep nest with 2 statements over one shared array."""
    depth = draw(st.integers(1, 2))
    trips = [draw(st.integers(2, 5)) for _ in range(depth)]
    loop_vars = ["i", "j"][:depth]
    b = KernelBuilder("rand", Language.C)
    extent = 64
    b.array("A", (extent,))
    stmts = []
    for s in range(2):
        coeffs = {v: draw(_coeff) for v in loop_vars}
        const = draw(st.integers(8, 16))
        expr = AffineExpr(coeffs, const)
        kind = draw(st.sampled_from([AccessKind.READ, AccessKind.WRITE, AccessKind.UPDATE]))
        stmts.append(b.stmt(AccessSpec("A", (expr,), kind), iops=1))
    loops = [(v, 0, t) for v, t in zip(loop_vars, trips)]
    return b.nest(loops, stmts)


class TestRandomizedSoundness:
    @settings(max_examples=120, deadline=None)
    @given(random_1d_nest())
    def test_all_conflicts_covered(self, nest):
        _brute_force_check(nest)
