"""Tests for the kernel builder and whole-kernel validation."""

import pytest

from repro.errors import IRError, IRValidationError
from repro.ir import (
    DType,
    Feature,
    Kernel,
    KernelBuilder,
    Language,
    Layout,
    check_kernel,
    read,
    update,
    validate_kernel,
    write,
)


class TestBuilder:
    def test_simple_kernel(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        b.nest([("i", 8)], [b.stmt(update("A", "i"), fadd=1)])
        k = b.build()
        assert k.name == "k"
        assert len(k.nests) == 1

    def test_undeclared_array_rejected(self):
        b = KernelBuilder("k", Language.C)
        with pytest.raises(IRError):
            b.stmt(read("missing", "i"))

    def test_array_redeclaration_conflict(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        with pytest.raises(IRError):
            b.array("A", (9,))

    def test_array_redeclaration_identical_ok(self):
        b = KernelBuilder("k", Language.C)
        a1 = b.array("A", (8,))
        a2 = b.array("A", (8,))
        assert a1 == a2

    def test_fortran_defaults_col_major(self):
        b = KernelBuilder("k", Language.FORTRAN)
        a = b.array("A", (4, 4))
        assert a.layout is Layout.COL_MAJOR

    def test_parallel_marks_loop_and_feature(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        nest = b.nest([("i", 8)], [b.stmt(update("A", "i"))], parallel=("i",))
        assert nest.loops[0].parallel
        assert Feature.OPENMP in b.build().features

    def test_parallel_unknown_loop_rejected(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        with pytest.raises(IRError):
            b.nest([("i", 8)], [b.stmt(update("A", "i"))], parallel=("z",))

    def test_indirect_access_adds_feature(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        b.nest([("i", 8)], [b.stmt(update("A", "i", indirect=True))])
        assert Feature.INDIRECT in b.build().features

    def test_build_without_nests_rejected(self):
        with pytest.raises(IRError):
            KernelBuilder("k", Language.C).build()

    def test_loop_spec_forms(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (20,))
        nest = b.nest(
            [("i", 2, 18, 2)],
            [b.stmt(update("A", "i"))],
        )
        assert nest.loops[0].trip_count == 8

    def test_bad_loop_spec_rejected(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        with pytest.raises(IRError):
            b.nest(["not-a-loop"], [b.stmt(update("A", "i"))])

    def test_statement_autonaming(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        s0 = b.stmt(update("A", "i"))
        s1 = b.stmt(update("A", "i"))
        assert (s0.name, s1.name) == ("S0", "S1")

    def test_dtype_propagates(self):
        b = KernelBuilder("k", Language.C)
        b.array("c", (8,), dtype=DType.I32)
        nest = b.nest([("i", 8)], [b.stmt(update("c", "i"), iops=1)])
        assert nest.accesses[0].array.dtype is DType.I32


class TestValidation:
    def test_out_of_bounds_flagged(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        b.nest([("i", 8)], [b.stmt(update("A", "i+1"))])
        problems = validate_kernel(b.build())
        assert problems and "spans" in problems[0].message
        assert problems[0].rule_id == "BND002"

    def test_in_bounds_passes(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (9,))
        b.nest([("i", 8)], [b.stmt(update("A", "i+1"))])
        assert validate_kernel(b.build()) == []

    def test_negative_subscript_flagged(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        b.nest([("i", 8)], [b.stmt(update("A", "i-1"))])
        assert validate_kernel(b.build())

    def test_indirect_skips_bounds(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (4,))
        b.nest([("i", 100)], [b.stmt(update("A", "i", indirect=True))])
        assert validate_kernel(b.build()) == []

    def test_check_kernel_raises(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (4,))
        b.nest([("i", 8)], [b.stmt(update("A", "i"))])
        with pytest.raises(IRValidationError):
            check_kernel(b.build())

    def test_reduction_over_unknown_loop_rejected_at_construction(self):
        from repro.errors import UnknownLoopError

        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        with pytest.raises(UnknownLoopError):
            b.nest([("i", 8)], [b.stmt(update("A", "i"), reduction="zz")])


class TestKernelQueries:
    def test_total_flops_and_ops(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (10,))
        b.nest([("i", 10)], [b.stmt(update("A", "i"), fma=2, iops=1)])
        k = b.build()
        assert k.total_flops() == 10 * 4
        assert k.total_ops().iops == 10

    def test_data_footprint(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (10,))
        b.array("B", (5,))
        b.nest([("i", 5)], [b.stmt(update("A", "i"), read("B", "i"), fadd=1)])
        assert b.build().data_footprint_bytes == 15 * 8

    def test_arithmetic_intensity(self):
        b = KernelBuilder("k", Language.C)
        b.array("a", (64,))
        b.array("bb", (64,))
        b.nest([("i", 64)], [b.stmt(write("a", "i"), read("bb", "i"), fma=1)])
        k = b.build()
        assert k.arithmetic_intensity_naive == pytest.approx(2 / 16)

    def test_replace_nest(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8, 8))
        b.nest([("i", 8), ("j", 8)], [b.stmt(update("A", "i", "j"))])
        k = b.build()
        k2 = k.replace_nest(0, k.nests[0].permuted(("j", "i")))
        assert k2.nests[0].loop_vars == ("j", "i")
        assert k.nests[0].loop_vars == ("i", "j")  # original untouched

    def test_is_openmp_from_loop_flag(self):
        b = KernelBuilder("k", Language.C)
        b.array("A", (8,))
        b.nest([("i", 8)], [b.stmt(update("A", "i"))], parallel=("i",))
        assert b.build().is_openmp
