"""Tests for the compiler-flag model."""

import pytest

from repro.compilers import (
    FJTRAD_FLAGS,
    GNU_FLAGS,
    LLVM_FLAGS,
    LLVM_POLLY_FLAGS,
    CompilerFlags,
    LtoMode,
    parse_flags,
)


class TestParsing:
    def test_o_levels(self):
        assert parse_flags(["-O0"]).opt_level == 0
        assert parse_flags(["-O3"]).opt_level == 3
        assert parse_flags(["-O2"]).opt_level == 2

    def test_ofast_implies_fastmath(self):
        f = parse_flags(["-Ofast"])
        assert f.opt_level == 3 and f.fast_math

    def test_ffast_math(self):
        assert parse_flags(["-O3", "-ffast-math"]).fast_math
        assert not parse_flags(["-O3"]).fast_math

    def test_fno_fast_math_wins(self):
        assert not parse_flags(["-Ofast", "-fno-fast-math"]).fast_math

    def test_lto_variants(self):
        assert parse_flags(["-flto"]).lto is LtoMode.FULL
        assert parse_flags(["-flto=thin"]).lto is LtoMode.THIN
        assert parse_flags(["-ipo"]).lto is LtoMode.FULL
        assert parse_flags([]).lto is LtoMode.OFF

    def test_march_native_family(self):
        for tok in ("-march=native", "-xHost", "-mcpu=native", "-mcpu=a64fx"):
            assert parse_flags([tok]).march_native

    def test_kfast_combined(self):
        f = parse_flags(["-Kfast,ocl,largepage,lto"])
        assert f.opt_level == 3
        assert f.fast_math
        assert f.march_native
        assert f.ocl
        assert f.largepage
        assert f.lto is LtoMode.FULL

    def test_polly(self):
        f = parse_flags(["-mllvm", "-polly"])
        assert f.polly

    def test_other_mllvm_options_skipped(self):
        f = parse_flags(["-mllvm", "-polly-vectorizer=polly"])
        assert not f.polly

    def test_unknown_flags_tolerated(self):
        f = parse_flags(["-Wall", "-fstrict-aliasing", "-O2"])
        assert f.opt_level == 2
        assert "-Wall" in f.raw

    def test_openmp_toggles(self):
        assert parse_flags(["-fopenmp"]).openmp
        assert not parse_flags(["-fno-openmp"]).openmp


class TestPaperFlagSets:
    def test_fjtrad(self):
        assert FJTRAD_FLAGS.fast_math and FJTRAD_FLAGS.ocl and FJTRAD_FLAGS.largepage
        assert FJTRAD_FLAGS.lto is LtoMode.FULL

    def test_llvm_thin_lto_no_polly(self):
        assert LLVM_FLAGS.lto is LtoMode.THIN
        assert not LLVM_FLAGS.polly
        assert LLVM_FLAGS.fast_math

    def test_polly_config_uses_full_lto(self):
        # "replacing the thin linker with the full linker, since thin
        # interfered with polly" (Sec. 2.1)
        assert LLVM_POLLY_FLAGS.polly
        assert LLVM_POLLY_FLAGS.lto is LtoMode.FULL

    def test_gnu_lacks_fast_math(self):
        # The decisive difference for FP reductions (Sec. 3.3).
        assert not GNU_FLAGS.fast_math
        assert GNU_FLAGS.opt_level == 3
        assert GNU_FLAGS.march_native

    def test_with_override(self):
        f = GNU_FLAGS.with_(fast_math=True)
        assert f.fast_math and not GNU_FLAGS.fast_math
