"""Tests for the individual compiler passes."""

import pytest

from repro.compilers import compile_kernel, get_compiler
from repro.compilers.base import PassContext
from repro.compilers.passes.interchange import candidate_orders, stride_cost
from repro.ir import Feature, KernelBuilder, Language, read, update, write
from tests.conftest import build_gemm, build_stream


def _compile(variant, kernel, machine, flags=None):
    return compile_kernel(variant, kernel, machine, flags)


def _info(variant, kernel, machine, flags=None):
    ck = _compile(variant, kernel, machine, flags)
    assert ck.ok, ck.diagnostics
    return ck.nest_infos[0]


class TestInterchange:
    def test_icc_fixes_c_gemm(self, xeon_machine):
        info = _info("icc", build_gemm(256), xeon_machine)
        assert info.nest.loop_vars == ("i", "k", "j")
        assert "interchange" in info.applied_passes

    def test_fjtrad_misses_c_gemm(self, a64fx_machine):
        # The Figure 1 anomaly: trad mode only interchanges Fortran.
        info = _info("FJtrad", build_gemm(256), a64fx_machine)
        assert info.nest.loop_vars == ("i", "j", "k")

    def test_fjtrad_fixes_fortran_gemm(self, a64fx_machine):
        kernel = build_gemm(256, Language.FORTRAN)
        info = _info("FJtrad", kernel, a64fx_machine)
        # column-major: the i-stride-1 stream should end up innermost
        assert info.nest.loop_vars[-1] == "i"

    def test_gnu_fixes_c_gemm(self, a64fx_machine):
        info = _info("GNU", build_gemm(256), a64fx_machine)
        assert info.nest.loop_vars == ("i", "k", "j")

    def test_parallel_loop_anchored(self, a64fx_machine):
        b = KernelBuilder("p", Language.C)
        n = 64
        b.array("A", (n, n))
        b.array("B", (n, n))
        b.nest(
            [("i", n), ("j", n)],
            [b.stmt(write("A", "j", "i"), read("B", "j", "i"), fadd=1)],
            parallel=("i",),
        )
        info = _info("LLVM", b.build(), a64fx_machine)
        # would love j outermost, but i is the OpenMP loop -> anchored
        assert info.nest.loop_vars[0] == "i"

    def test_stride_cost_prefers_contiguous(self, a64fx_machine):
        nest = build_gemm(128).nests[0]
        line = a64fx_machine.line_bytes
        assert stride_cost(nest, ("i", "k", "j"), line) < stride_cost(nest, ("i", "j", "k"), line)

    def test_candidate_orders_full_permutations(self):
        orders = candidate_orders(("i", "j", "k"), 3)
        assert len(orders) == 5  # 3! - original

    def test_candidate_orders_pairwise_when_deep(self):
        orders = candidate_orders(("i", "j", "k"), 2)
        assert len(orders) == 3  # all single swaps
        assert ("i", "k", "j") in orders


class TestVectorize:
    def test_stream_vectorizes_sve(self, a64fx_machine, stream_kernel):
        info = _info("LLVM", stream_kernel, a64fx_machine)
        assert info.vectorized
        assert info.vector_isa.name == "sve512"
        assert info.vec_lanes == 8

    def test_gnu_no_fastmath_blocks_fp_reduction(self, a64fx_machine):
        b = KernelBuilder("dot", Language.C)
        b.array("a", (4096,))
        b.array("s", (1,))
        b.nest([("i", 4096)], [b.stmt(update("s", 0), read("a", "i"), fma=1, reduction="i")])
        kernel = b.build()
        assert not _info("GNU", kernel, a64fx_machine).vectorized
        assert _info("LLVM", kernel, a64fx_machine).vectorized

    def test_gnu_with_fastmath_vectorizes_reduction(self, a64fx_machine):
        from repro.compilers import parse_flags

        b = KernelBuilder("dot", Language.C)
        b.array("a", (4096,))
        b.array("s", (1,))
        b.nest([("i", 4096)], [b.stmt(update("s", 0), read("a", "i"), fma=1, reduction="i")])
        flags = parse_flags(["-O3", "-march=native", "-ffast-math"])
        assert _info("GNU", b.build(), a64fx_machine, flags).vectorized

    def test_gnu_bails_on_predicated(self, a64fx_machine):
        b = KernelBuilder("pred", Language.C)
        b.array("a", (4096,))
        b.nest([("i", 4096)], [b.stmt(update("a", "i"), fadd=1, predicated=True)])
        assert not _info("GNU", b.build(), a64fx_machine).vectorized
        assert _info("FJtrad", b.build(), a64fx_machine).vectorized

    def test_gather_capability_gate(self, a64fx_machine):
        b = KernelBuilder("gather", Language.C)
        b.array("x", (4096,))
        b.array("y", (4096,))
        b.nest(
            [("i", 4096)],
            [b.stmt(write("y", "i"), read("x", "i", indirect=True), fadd=1)],
        )
        fj = _info("FJtrad", b.build(), a64fx_machine)
        assert fj.vectorized and fj.uses_gather
        assert not _info("GNU", b.build(), a64fx_machine).vectorized

    def test_indirect_write_blocks_everyone(self, a64fx_machine):
        b = KernelBuilder("scatter", Language.C)
        b.array("h", (4096,))
        b.nest([("i", 4096)], [b.stmt(update("h", "i", indirect=True), fadd=1)])
        for variant in ("FJtrad", "FJclang", "LLVM", "GNU"):
            assert not _info(variant, b.build(), a64fx_machine).vectorized

    def test_pointer_chasing_blocks_everyone(self, a64fx_machine):
        from repro.suites.kernels_common import pointer_chase

        k = pointer_chase("pc", 1024)
        for variant in ("FJtrad", "LLVM", "GNU"):
            assert not _info(variant, k, a64fx_machine).vectorized

    def test_no_march_native_means_narrow_isa(self, a64fx_machine, stream_kernel):
        from repro.compilers import parse_flags

        info = _info("LLVM", stream_kernel, a64fx_machine, parse_flags(["-O3", "-ffast-math"]))
        assert info.vector_isa.name == "neon"

    def test_below_o2_no_vectorization(self, a64fx_machine, stream_kernel):
        from repro.compilers import parse_flags

        info = _info("LLVM", stream_kernel, a64fx_machine, parse_flags(["-O1", "-mcpu=native"]))
        assert not info.vectorized

    def test_seidel_never_vectorizes(self, a64fx_machine):
        from repro.suites.kernels_common import seidel_sweep

        for variant in ("FJtrad", "LLVM", "GNU"):
            assert not _info(variant, seidel_sweep("s", 128), a64fx_machine).vectorized


class TestPolly:
    def test_polly_tiles_gemm(self, a64fx_machine):
        info = _info("LLVM+Polly", build_gemm(512), a64fx_machine)
        assert "polly" in info.applied_passes
        assert info.tile_working_set is not None

    def test_plain_llvm_does_not_tile(self, a64fx_machine):
        assert _info("LLVM", build_gemm(512), a64fx_machine).tile_working_set is None

    def test_polly_skips_non_scop(self, a64fx_machine):
        from repro.suites.kernels_common import spmv_csr

        info = _info("LLVM+Polly", spmv_csr("sp", 1024, 8, parallel=False), a64fx_machine)
        assert "polly" not in info.applied_passes

    def test_polly_interchanges_regardless_of_language_gate(self, a64fx_machine):
        # Polly works on LLVM-IR; but Fortran goes through frt (delegation),
        # so use a C kernel with a deep nest the pairwise interchanger
        # would also fix, and check polly claims it on the SCoP.
        info = _info("LLVM+Polly", build_gemm(256), a64fx_machine)
        assert info.nest.loop_vars == ("i", "k", "j")


class TestDce:
    def test_mvt_eliminated_only_by_polly(self, a64fx_machine):
        from repro.suites.polybench_la import mvt

        kernel = mvt()
        polly = _compile("LLVM+Polly", kernel, a64fx_machine)
        assert all(i.eliminated for i in polly.nest_infos)
        llvm = _compile("LLVM", kernel, a64fx_machine)
        assert not any(i.eliminated for i in llvm.nest_infos)

    def test_dce_requires_scop(self, a64fx_machine):
        # A kernel named mvt that is NOT a SCoP must survive.
        b = KernelBuilder("mvt", Language.C)
        b.array("x", (64,))
        b.nest([("i", 64)], [b.stmt(update("x", "i", indirect=True), fadd=1)])
        ck = _compile("LLVM+Polly", b.build(), a64fx_machine)
        assert not any(i.eliminated for i in ck.nest_infos)


class TestOpenMPAndFinalizers:
    def test_openmp_outlining(self, a64fx_machine, stream_kernel):
        info = _info("GNU", stream_kernel, a64fx_machine)
        assert info.parallel
        assert info.omp_fork_us > 0

    def test_serial_kernel_not_outlined(self, a64fx_machine):
        info = _info("GNU", build_gemm(64), a64fx_machine)
        assert not info.parallel

    def test_gnu_runtime_costs_highest(self, a64fx_machine, stream_kernel):
        gnu = _info("GNU", stream_kernel, a64fx_machine)
        fj = _info("FJtrad", stream_kernel, a64fx_machine)
        assert gnu.omp_fork_us > fj.omp_fork_us
        assert gnu.omp_barrier_us > fj.omp_barrier_us

    def test_prefetch_quality_ordering(self, a64fx_machine, stream_kernel):
        fj = _info("FJtrad", stream_kernel, a64fx_machine)
        gnu = _info("GNU", stream_kernel, a64fx_machine)
        assert fj.sw_prefetch > gnu.sw_prefetch

    def test_vendor_tuning_recovers_fj_schedule(self, a64fx_machine):
        plain = build_stream(name="plain")
        tuned = build_stream(name="tuned").with_features(Feature.VENDOR_TUNED)
        q_plain = _info("FJtrad", plain, a64fx_machine).memory_schedule_quality
        q_tuned = _info("FJtrad", tuned, a64fx_machine).memory_schedule_quality
        assert q_tuned > q_plain
        # GNU ignores OCLs: unchanged
        g_plain = _info("GNU", plain, a64fx_machine).memory_schedule_quality
        g_tuned = _info("GNU", tuned, a64fx_machine).memory_schedule_quality
        assert g_plain == g_tuned

    def test_unroll_marks_hot_loops(self, a64fx_machine, stream_kernel):
        assert _info("LLVM", stream_kernel, a64fx_machine).unroll_factor >= 2

    def test_scalar_quality_language_split(self, a64fx_machine):
        c_kernel = build_gemm(64, Language.C, name="gc")
        cxx_kernel = build_gemm(64, Language.CXX, name="gx")
        qc = _info("FJtrad", c_kernel, a64fx_machine).scalar_quality
        qx = _info("FJtrad", cxx_kernel, a64fx_machine).scalar_quality
        assert qx < qc  # trad-mode C++ is the weak spot
