"""Tests for the compiler registry, variants, delegation, incidents."""

import pytest

from repro.compilers import (
    BASELINE_VARIANT,
    STUDY_VARIANTS,
    CompileStatus,
    available_variants,
    compile_kernel,
    get_compiler,
)
from repro.errors import ReproError
from repro.ir import Language
from tests.conftest import build_gemm, build_stream


class TestRegistry:
    def test_study_variants_are_the_papers_five(self):
        assert STUDY_VARIANTS == ("FJtrad", "FJclang", "LLVM", "LLVM+Polly", "GNU")

    def test_baseline_is_fjtrad(self):
        assert BASELINE_VARIANT == "FJtrad"

    def test_icc_available_but_not_a_study_variant(self):
        assert "icc" in available_variants()
        assert "icc" not in STUDY_VARIANTS

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            get_compiler("msvc")

    def test_each_variant_instantiates_with_own_caps(self):
        for v in STUDY_VARIANTS:
            c = get_compiler(v)
            assert c.variant == v
            assert c.caps.name == v

    def test_default_flags_match_paper(self):
        assert get_compiler("FJtrad").default_flags().ocl
        assert get_compiler("LLVM").default_flags().fast_math
        assert not get_compiler("GNU").default_flags().fast_math
        assert get_compiler("LLVM+Polly").default_flags().polly


class TestFortranDelegation:
    def test_llvm_fortran_uses_frt_pipeline(self, a64fx_machine):
        kernel = build_gemm(128, Language.FORTRAN)
        llvm = compile_kernel("LLVM", kernel, a64fx_machine)
        fj = compile_kernel("FJtrad", kernel, a64fx_machine)
        assert llvm.compiler == "LLVM"  # labelled as the requesting env
        assert any("frt" in d for d in llvm.diagnostics)
        # codegen identical to FJtrad's
        assert llvm.nest_infos[0].nest.loop_vars == fj.nest_infos[0].nest.loop_vars
        assert llvm.nest_infos[0].vec_efficiency == fj.nest_infos[0].vec_efficiency

    def test_gnu_compiles_fortran_itself(self, a64fx_machine):
        kernel = build_gemm(128, Language.FORTRAN)
        gnu = compile_kernel("GNU", kernel, a64fx_machine)
        assert not any("frt" in d for d in gnu.diagnostics)

    def test_c_kernels_not_delegated(self, a64fx_machine):
        kernel = build_gemm(128, Language.C)
        llvm = compile_kernel("LLVM", kernel, a64fx_machine)
        assert not any("frt" in d for d in llvm.diagnostics)


class TestIncidents:
    def test_fjclang_ices_on_k22(self, a64fx_machine):
        from repro.suites.microkernels import _kernels

        k22 = next(k for k, _ in _kernels() if k.name == "k22")
        result = compile_kernel("FJclang", k22, a64fx_machine)
        assert result.status is CompileStatus.COMPILE_ERROR
        assert not result.ok
        assert result.nest_infos == ()

    def test_gnu_faults_on_six_micro_kernels(self, a64fx_machine):
        from repro.suites.microkernels import _kernels

        faulted = []
        for kernel, _ in _kernels():
            r = compile_kernel("GNU", kernel, a64fx_machine)
            if r.status is CompileStatus.RUNTIME_FAULT:
                faulted.append(kernel.name)
        assert len(faulted) == 6

    def test_other_variants_build_all_micro_kernels(self, a64fx_machine):
        from repro.suites.microkernels import _kernels

        for variant in ("FJtrad", "LLVM", "LLVM+Polly"):
            for kernel, _ in _kernels():
                assert compile_kernel(variant, kernel, a64fx_machine).ok

    def test_anomaly_multiplier_attached(self, a64fx_machine):
        from repro.suites.polybench_la import mvt

        fj = compile_kernel("FJtrad", mvt(), a64fx_machine)
        assert fj.anomaly_multiplier > 1.0
        llvm = compile_kernel("LLVM", mvt(), a64fx_machine)
        assert llvm.anomaly_multiplier == 1.0


class TestCapsSanity:
    """Cross-variant orderings the paper's findings rest on."""

    def test_integer_quality_ordering(self):
        gnu = get_compiler("GNU").caps
        fj = get_compiler("FJtrad").caps
        llvm = get_compiler("LLVM").caps
        fjc = get_compiler("FJclang").caps
        assert gnu.integer_quality > fj.integer_quality
        assert fj.integer_quality > llvm.integer_quality
        assert fj.integer_quality > fjc.integer_quality

    def test_fortran_vectorization_ordering(self):
        gnu = get_compiler("GNU").caps
        fj = get_compiler("FJtrad").caps
        assert fj.vec_quality[Language.FORTRAN] > gnu.vec_quality[Language.FORTRAN]

    def test_cxx_is_fjtrad_weakness(self):
        fj = get_compiler("FJtrad").caps
        assert fj.scalar_quality[Language.CXX] < fj.scalar_quality[Language.C]

    def test_omp_runtime_ordering(self):
        gnu = get_compiler("GNU").caps
        fj = get_compiler("FJtrad").caps
        assert gnu.openmp_barrier_us > 3 * fj.openmp_barrier_us

    def test_only_polly_variant_is_polyhedral(self):
        for v in STUDY_VARIANTS:
            caps = get_compiler(v).caps
            assert caps.polyhedral == (v == "LLVM+Polly")

    def test_stream_schedule_gap_on_c(self):
        fj = get_compiler("FJtrad").caps
        llvm = get_compiler("LLVM").caps
        ratio = llvm.memory_schedule_quality[Language.C] / fj.memory_schedule_quality[Language.C]
        assert ratio > 1.4  # the BabelStream "up to 51%" driver

    def test_interchange_language_gates(self):
        assert Language.C not in get_compiler("FJtrad").caps.interchange_languages
        assert Language.FORTRAN in get_compiler("FJtrad").caps.interchange_languages
        assert Language.C in get_compiler("LLVM").caps.interchange_languages
        assert not get_compiler("FJclang").caps.interchange_languages
