"""Tests for the loop-fusion prepass."""

import pytest

from repro.compilers import compile_kernel, get_compiler
from repro.compilers.base import PassContext
from repro.compilers.passes.fusion import fuse_kernel, try_fuse
from repro.ir import KernelBuilder, Language, read, update, write


def _producer_consumer(n=256, lang=Language.C):
    """t[i] = a[i]*b[i]; out[i] = t[i] + c[i] — classically fusable."""
    b = KernelBuilder("pc", lang)
    b.array("a", (n,))
    b.array("bb", (n,))
    b.array("c", (n,))
    b.array("t", (n,))
    b.array("out", (n,))
    b.nest([("i", n)], [b.stmt(write("t", "i"), read("a", "i"), read("bb", "i"), fmul=1)])
    b.nest([("i", n)], [b.stmt(write("out", "i"), read("t", "i"), read("c", "i"), fadd=1)])
    return b.build()


def _jacobi_pair(n=64, lang=Language.C):
    """Sweep + copy-back: fusion-preventing (the copy feeds the next
    sweep iteration's neighbour reads)."""
    from repro.suites.kernels_common import jacobi2d

    return jacobi2d("jac", n, lang, parallel=False)


def _ctx(variant, kernel, machine):
    compiler = get_compiler(variant)
    return PassContext(
        machine=machine,
        flags=compiler.default_flags(),
        caps=compiler.caps,
        language=kernel.language,
        kernel=kernel,
    )


class TestTryFuse:
    def test_producer_consumer_fuses(self):
        k = _producer_consumer()
        fused = try_fuse(k.nests[0], k.nests[1])
        assert fused is not None
        assert len(fused.body) == 2
        assert fused.loop_vars == ("i",)

    def test_jacobi_pair_rejected(self):
        k = _jacobi_pair()
        assert try_fuse(k.nests[0], k.nests[1]) is None

    def test_mismatched_bounds_rejected(self):
        b = KernelBuilder("mm", Language.C)
        b.array("t", (64,))
        b.nest([("i", 64)], [b.stmt(update("t", "i"), fadd=1)])
        b.nest([("i", 32)], [b.stmt(update("t", "i"), fadd=1)])
        k = b.build()
        assert try_fuse(k.nests[0], k.nests[1]) is None

    def test_disjoint_arrays_not_fused(self):
        # no shared data -> no locality benefit -> skipped
        b = KernelBuilder("dj", Language.C)
        b.array("x", (64,))
        b.array("y", (64,))
        b.nest([("i", 64)], [b.stmt(update("x", "i"), fadd=1)])
        b.nest([("i", 64)], [b.stmt(update("y", "i"), fadd=1)])
        k = b.build()
        assert try_fuse(k.nests[0], k.nests[1]) is None

    def test_loop_var_renaming(self):
        b = KernelBuilder("rn", Language.C)
        b.array("t", (64,))
        b.nest([("i", 64)], [b.stmt(write("t", "i"), iops=1)])
        b.nest([("j", 64)], [b.stmt(read("t", "j"), update("t", "j"), fadd=1)])
        k = b.build()
        fused = try_fuse(k.nests[0], k.nests[1])
        assert fused is not None
        assert fused.loop_vars == ("i",)

    def test_backward_shift_rejected(self):
        # second nest reads what the first writes one iteration AHEAD:
        # fusing would read the value before it is produced.
        b = KernelBuilder("bs", Language.C)
        b.array("t", (66,))
        b.array("o", (66,))
        b.nest([("i", 64)], [b.stmt(write("t", "i"), iops=1)])
        b.nest([("i", 64)], [b.stmt(write("o", "i"), read("t", "i+1"))])
        k = b.build()
        assert try_fuse(k.nests[0], k.nests[1]) is None

    def test_forward_shift_allowed(self):
        # reading an element produced at an EARLIER iteration is fine.
        b = KernelBuilder("fs", Language.C)
        b.array("t", (66,))
        b.array("o", (66,))
        b.nest([("i", 1, 65)], [b.stmt(write("t", "i"), iops=1)])
        b.nest([("i", 1, 65)], [b.stmt(write("o", "i"), read("t", "i-1"))])
        k = b.build()
        assert try_fuse(k.nests[0], k.nests[1]) is not None


class TestFuseKernel:
    def test_capability_gated(self, a64fx_machine):
        k = _producer_consumer()
        fj = fuse_kernel(k, _ctx("FJtrad", k, a64fx_machine))
        assert len(fj.nests) == 1  # FJtrad fuses
        gnu = fuse_kernel(k, _ctx("GNU", k, a64fx_machine))
        assert len(gnu.nests) == 2  # GNU's caps say no

    def test_greedy_chain(self, a64fx_machine):
        b = KernelBuilder("chain", Language.C)
        b.array("t", (64,))
        for _ in range(4):
            b.nest([("i", 64)], [b.stmt(update("t", "i"), fadd=1)])
        k = b.build()
        fused = fuse_kernel(k, _ctx("FJtrad", k, a64fx_machine))
        assert len(fused.nests) == 1
        assert len(fused.nests[0].body) == 4

    def test_compile_driver_applies_fusion(self, a64fx_machine):
        k = _producer_consumer(lang=Language.FORTRAN)
        compiled = compile_kernel("FJtrad", k, a64fx_machine)
        assert len(compiled.nest_infos) == 1

    def test_fusion_cuts_traffic(self, a64fx_machine):
        # the fused producer/consumer keeps t cache-hot: less memory I/O
        from repro.perf import nest_traffic

        n = 1 << 22
        k = _producer_consumer(n)
        fj = compile_kernel("FJtrad", k, a64fx_machine)
        gnu = compile_kernel("GNU", k, a64fx_machine)
        fj_bytes = sum(nest_traffic(i, a64fx_machine).memory_bytes for i in fj.nest_infos)
        gnu_bytes = sum(nest_traffic(i, a64fx_machine).memory_bytes for i in gnu.nest_infos)
        assert fj_bytes < gnu_bytes
