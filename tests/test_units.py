"""Tests for the unit helpers."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    cycles_to_seconds,
    gb_per_s,
    ghz,
    pretty_bytes,
    pretty_seconds,
    seconds_to_cycles,
)


class TestPrefixes:
    def test_binary_prefixes(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_rates_decimal(self):
        assert ghz(2.2) == 2.2e9
        assert gb_per_s(256) == 256e9


class TestConversions:
    def test_roundtrip(self):
        f = ghz(2.0)
        assert cycles_to_seconds(seconds_to_cycles(1.5, f), f) == pytest.approx(1.5)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)


class TestPretty:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0.0 B"),
            (512, "512.0 B"),
            (2048, "2.0 KiB"),
            (8 * MiB, "8.0 MiB"),
            (3 * GiB, "3.0 GiB"),
            (5 * 1024 * GiB, "5.0 TiB"),
        ],
    )
    def test_pretty_bytes(self, n, expected):
        assert pretty_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (0, "0 s"),
            (3e-9, "3.0 ns"),
            (4.2e-6, "4.2 us"),
            (0.0123, "12.3 ms"),
            (1.5, "1.50 s"),
            (90.0, "90.00 s"),
            (600.0, "10.0 min"),
            (7200.0, "2.0 h"),
        ],
    )
    def test_pretty_seconds(self, t, expected):
        assert pretty_seconds(t) == expected

    def test_negative_seconds(self):
        assert pretty_seconds(-1.5) == "-1.50 s"
