"""Tests for the cross-compiler divergence analyzer.

The headline assertions mirror the paper: DIV001 must statically
reproduce the 2mm/3mm interchange diagnosis (fcc keeps ijk, the others
reorder), DIV002 the mvt dead-code outlier, and the best-compiler
recommendation must agree with the batched cost-model grid on
PolyBench except for an explicitly justified baseline of near-tie
disagreements."""

from repro.staticanalysis import AnalysisContext, analyze_kernel
from repro.staticanalysis.divergence import (
    DIVERGENCE_RULES,
    STATUS_COMPILE_ERROR,
    STATUS_RUNTIME_FAULT,
    grid_best_variants,
    predict_transforms,
    rank_divergence,
    recommend_benchmark,
    recommend_compiler,
)
from repro.suites import get_benchmark, get_suite


def _kernel(full_name, kernel_name=None):
    bench = get_benchmark(full_name)
    kernels = list(bench.kernels())
    if kernel_name is None:
        return kernels[0]
    return next(k for k in kernels if k.name == kernel_name)


def _div_findings(kernel, ctx=None):
    ctx = ctx or AnalysisContext()
    return [
        d for d in analyze_kernel(kernel, ctx=ctx)
        if d.rule_id in DIVERGENCE_RULES
    ]


class TestTransformPredictions:
    def test_2mm_gate_replay(self):
        """FJ keeps ijk; GNU/LLVM interchange; Polly also tiles."""
        ctx = AnalysisContext()
        preds = predict_transforms(_kernel("polybench.2mm"), ctx)
        for variant in ("FJtrad", "FJclang"):
            assert all(not n.interchanged for n in preds[variant].nests)
        for variant in ("GNU", "LLVM", "LLVM+Polly"):
            assert all(
                n.order[:2] == ("i", "k") for n in preds[variant].nests
            ), variant
        assert all(n.tiled for n in preds["LLVM+Polly"].nests)
        assert not any(n.tiled for n in preds["LLVM"].nests)

    def test_durbin_vectorization_split(self):
        """FJ vectorizes durbin in place; GNU/LLVM interchange into a
        carried dependence and lose SIMD (the 8x empirical gap)."""
        ctx = AnalysisContext()
        preds = predict_transforms(_kernel("polybench.durbin"), ctx)
        assert any(n.vectorized for n in preds["FJtrad"].nests)
        for variant in ("GNU", "LLVM"):
            assert not any(n.vectorized for n in preds[variant].nests), variant

    def test_incident_statuses(self):
        ctx = AnalysisContext()
        k22 = predict_transforms(_kernel("micro.k22"), ctx)
        assert k22["FJclang"].status == STATUS_COMPILE_ERROR
        assert k22["FJtrad"].ok
        k03 = predict_transforms(_kernel("micro.k03"), ctx)
        assert k03["GNU"].status == STATUS_RUNTIME_FAULT

    def test_mvt_dce(self):
        ctx = AnalysisContext()
        preds = predict_transforms(_kernel("polybench.mvt"), ctx)
        assert preds["LLVM+Polly"].eliminated
        assert not preds["LLVM"].eliminated

    def test_memoized_on_context(self):
        ctx = AnalysisContext()
        kernel = _kernel("polybench.2mm")
        assert predict_transforms(kernel, ctx) is predict_transforms(kernel, ctx)


class TestDivergenceRules:
    def test_div001_reproduces_the_paper_2mm_diagnosis(self):
        findings = [
            d for d in _div_findings(_kernel("polybench.2mm"))
            if d.rule_id == "DIV001"
        ]
        assert len(findings) == 2  # both nests
        message = findings[0].message
        assert "FJtrad" in message and "FJclang" in message
        assert "ijk" in message and "ikj" in message
        assert "2mm/3mm" in message
        assert "rewrite the nest as ikj" in findings[0].hint

    def test_div001_fires_on_3mm_too(self):
        findings = [
            d for d in _div_findings(_kernel("polybench.3mm"))
            if d.rule_id == "DIV001"
        ]
        assert len(findings) == 3

    def test_div002_mvt_outlier(self):
        findings = [
            d for d in _div_findings(_kernel("polybench.mvt"))
            if d.rule_id == "DIV002"
        ]
        assert len(findings) == 1
        assert "LLVM+Polly" in findings[0].message
        assert "mvt outlier" in findings[0].message

    def test_div003_compile_error_and_fault(self):
        k22 = [
            d for d in _div_findings(_kernel("micro.k22"))
            if d.rule_id == "DIV003"
        ]
        assert any("FJclang" in d.message for d in k22)
        k03 = [
            d for d in _div_findings(_kernel("micro.k03"))
            if d.rule_id == "DIV003"
        ]
        assert any("GNU" in d.message for d in k03)

    def test_ranking_puts_incidents_before_notes(self):
        ctx = AnalysisContext()
        findings = []
        for name in ("polybench.mvt", "polybench.2mm"):
            findings.extend(_div_findings(_kernel(name), ctx))
        ranked = rank_divergence(findings)
        assert ranked[0].rule_id == "DIV002"
        ids = [d.rule_id for d in ranked]
        assert ids.index("DIV001") < ids.index("DIV005")

    def test_rules_are_registered(self):
        from repro.staticanalysis import all_rules

        ids = {r.rule_id for r in all_rules()}
        assert set(DIVERGENCE_RULES) <= ids


class TestRecommendation:
    def test_2mm_prefers_an_interchanging_compiler(self):
        rec = recommend_compiler(_kernel("polybench.2mm"), AnalysisContext())
        assert rec.variant in ("GNU", "LLVM", "LLVM+Polly")
        assert rec.scores[rec.variant] < rec.scores["FJtrad"]
        assert rec.ranking()[0] == rec.variant

    def test_broken_variant_is_disqualified(self):
        rec = recommend_compiler(_kernel("micro.k22"), AnalysisContext())
        assert rec.scores["FJclang"] == float("inf")
        assert rec.variant != "FJclang"
        assert rec.reasons["FJclang"] == "does not compile"

    def test_benchmark_recommendation_sums_kernels(self):
        rec = recommend_benchmark(get_benchmark("polybench.2mm"), AnalysisContext())
        assert rec.name == "polybench.2mm"
        assert set(rec.ranking()) == set(rec.scores)


#: PolyBench benchmarks where the static proxy is allowed to disagree
#: with the batched cost-model grid, each with the reviewed reason.
#: Adding an entry here requires the same justification discipline as
#: adding a lint-baseline entry: explain *why* the static model cannot
#: see the effect, don't just append the failing name.
JUSTIFIED_DISAGREEMENTS = {
    # Grid winner LLVM+Polly by ~1.5% over plain LLVM: the margin is
    # the tiling-vs-versioning-overhead interplay on a stencil whose
    # working set barely overflows — below the static proxy's
    # resolution (it prices tiling with the pass's budget formula but
    # not the pass's epilogue/prefetch adjustments).
    "polybench.adi",
    # Grid winner FJtrad: Fujitsu's memory-scheduling pass *upgrades*
    # its own memory_schedule_quality (0.55 -> 0.85) and enables
    # software prefetch on streaming stencils — a second-order,
    # pass-internal adjustment the gate replay deliberately does not
    # model.  Margins are ~5%.
    "polybench.jacobi-1d",
    # Same mechanism as jacobi-1d (FJclang variant of the memsched
    # upgrade).
    "polybench.jacobi-2d",
}


class TestGridDifferential:
    def test_static_recommendation_matches_grid_oracle_on_polybench(self):
        """Every PolyBench best-variant prediction must equal the
        evaluate_grid winner, except the justified near-ties above —
        and those must stay *listed*: a justified benchmark that starts
        agreeing should be removed from the baseline."""
        oracle = grid_best_variants(suites=("polybench",))
        ctx = AnalysisContext()
        disagreements = {}
        for bench in get_suite("polybench").benchmarks:
            rec = recommend_benchmark(bench, ctx)
            if rec.variant != oracle[bench.full_name]:
                disagreements[bench.full_name] = (
                    rec.variant, oracle[bench.full_name]
                )
        unexpected = set(disagreements) - JUSTIFIED_DISAGREEMENTS
        assert not unexpected, (
            f"static recommendation drifted from the grid oracle on "
            f"{sorted(unexpected)}: {disagreements}"
        )
        resolved = JUSTIFIED_DISAGREEMENTS - set(disagreements)
        assert not resolved, (
            f"{sorted(resolved)} now agree with the grid — remove them "
            f"from JUSTIFIED_DISAGREEMENTS"
        )
