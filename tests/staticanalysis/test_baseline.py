"""Tests for the baseline-ratcheted lint gate, including the committed
``lint-baseline.json``: the repo's own corpus must gate green."""

import json
from pathlib import Path

import pytest

from repro.staticanalysis import (
    AnalysisContext,
    Baseline,
    BaselineDiff,
    Category,
    Diagnostic,
    LintError,
    Severity,
    analyze_benchmark,
    diff_against_baseline,
    finding_identity,
)
from repro.suites import all_suites, get_benchmark

REPO_BASELINE = Path(__file__).resolve().parents[2] / "lint-baseline.json"


def _diag(rule="OPT010", message="interchange left on the table", **kw):
    return Diagnostic(
        rule_id=rule,
        severity=kw.pop("severity", Severity.WARNING),
        category=Category.PERFORMANCE,
        message=message,
        **kw,
    )


class TestIdentity:
    def test_stable_across_equal_findings(self):
        assert finding_identity(_diag()) == finding_identity(_diag())

    def test_any_field_change_changes_identity(self):
        base = _diag(kernel="2mm", nest="nest0", hint="rewrite as ikj")
        variants = [
            _diag(kernel="3mm", nest="nest0", hint="rewrite as ikj"),
            _diag(kernel="2mm", nest="nest1", hint="rewrite as ikj"),
            _diag(kernel="2mm", nest="nest0", hint="rewrite as kij"),
            _diag(kernel="2mm", nest="nest0", hint="rewrite as ikj",
                  message="different ratio now"),
        ]
        ids = {finding_identity(v) for v in variants}
        assert finding_identity(base) not in ids
        assert len(ids) == len(variants)


class TestDiff:
    def test_round_trip_gates_green(self, tmp_path):
        findings = [_diag(kernel="2mm"), _diag(kernel="3mm", rule="DIV001")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(path)
        diff = diff_against_baseline(findings, path)
        assert diff.ok
        assert len(diff.matched) == 2 and not diff.stale

    def test_new_finding_fails_the_gate(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_diag(kernel="2mm")]).write(path)
        diff = diff_against_baseline(
            [_diag(kernel="2mm"), _diag(kernel="heat-3d")], path
        )
        assert not diff.ok
        assert [d.kernel for d in diff.new] == ["heat-3d"]

    def test_fixed_finding_reports_stale(self, tmp_path):
        gone = _diag(kernel="2mm")
        path = tmp_path / "baseline.json"
        Baseline.from_findings([gone, _diag(kernel="3mm")]).write(path)
        diff = diff_against_baseline([_diag(kernel="3mm")], path)
        assert diff.ok  # stale entries don't fail the gate ...
        assert diff.stale == (finding_identity(gone),)  # ... but are listed

    def test_missing_baseline_is_empty(self, tmp_path):
        diff = diff_against_baseline([_diag()], tmp_path / "absent.json")
        assert not diff.ok and len(diff.new) == 1

    def test_summary_mentions_all_three_buckets(self):
        diff = BaselineDiff(new=(_diag(),), matched=(), stale=("abc",))
        assert "1 new" in diff.summary() and "1 stale" in diff.summary()


class TestPersistence:
    def test_file_is_deterministic_and_documented(self, tmp_path):
        findings = [_diag(kernel="3mm"), _diag(kernel="2mm")]
        a = Baseline.from_findings(findings).to_json()
        b = Baseline.from_findings(list(reversed(findings))).to_json()
        assert a == b  # entry order is sorted, not arrival order
        doc = json.loads(a)
        assert doc["findings"][0]["kernel"] == "2mm"
        assert all("message" in e for e in doc["findings"])

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(path)


class TestCommittedBaseline:
    def test_repo_corpus_gates_green_with_no_stale_entries(self):
        """The committed baseline must exactly cover the current corpus
        — zero new findings (gate green) and zero stale entries (the
        ratchet is tight)."""
        ctx = AnalysisContext()
        findings = []
        for suite in all_suites():
            for bench in suite.benchmarks:
                findings.extend(analyze_benchmark(bench, ctx=ctx))
        diff = Baseline.load(REPO_BASELINE).diff(findings)
        assert diff.ok, f"unbaselined findings: {[str(d) for d in diff.new]}"
        assert not diff.stale, (
            f"stale baseline entries {diff.stale} — regenerate with "
            f"tools/lint_gate.py --update"
        )

    def test_known_2mm_divergence_is_baselined(self):
        findings = analyze_benchmark(get_benchmark("polybench.2mm"))
        baseline = Baseline.load(REPO_BASELINE)
        div = [d for d in findings if d.rule_id == "DIV001"]
        assert div
        assert all(finding_identity(d) in baseline.identities for d in div)
