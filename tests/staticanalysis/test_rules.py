"""Tests for the built-in rule set on small fixture kernels."""

import pytest

from repro.ir import KernelBuilder, Language, read, update, write
from repro.staticanalysis import (
    AnalysisContext,
    LintError,
    Severity,
    all_rules,
    analyze_kernel,
    get_rule,
    select_rules,
)


def _rules(*ids):
    return select_rules(ids)


def _findings(kernel, *rule_ids):
    rules = _rules(*rule_ids) if rule_ids else None
    return analyze_kernel(kernel, rules=rules)


def racy_kernel(n=64):
    """A proven distance-1 recurrence on a loop marked parallel."""
    b = KernelBuilder("racy", Language.C)
    b.array("a", (n,))
    b.nest(
        [("i", 1, n)],
        [b.stmt(write("a", "i"), read("a", "i-1"), fadd=1)],
        parallel=("i",),
    )
    return b.build()


def gemm_kernel(n=32, order=("i", "j", "k")):
    b = KernelBuilder("gemm_fixture", Language.C)
    b.array("A", (n, n))
    b.array("B", (n, n))
    b.array("C", (n, n))
    subscripts = {"i": ("i", "k"), "j": ("k", "j")}
    b.nest(
        [(v, n) for v in order],
        [
            b.stmt(
                update("C", "i", "j"),
                read("A", "i", "k"),
                read("B", "k", "j"),
                fma=1,
                reduction="k",
            )
        ],
    )
    return b.build()


class TestRegistry:
    def test_catalog_is_complete(self):
        ids = {r.rule_id for r in all_rules()}
        assert {
            "STRUCT001",
            "BND002",
            "RACE001",
            "VEC003",
            "INIT004",
            "RED005",
            "OPT010",
        } <= ids

    def test_unknown_rule_rejected(self):
        with pytest.raises(LintError, match="unknown rule"):
            get_rule("NOPE999")

    def test_select_subset(self):
        rules = select_rules(["RACE001", "OPT010"])
        assert [r.rule_id for r in rules] == ["RACE001", "OPT010"]


class TestRace001:
    def test_definite_race_is_error(self):
        findings = _findings(racy_kernel(), "RACE001")
        assert findings, "distance-1 recurrence on a parallel loop must fire"
        assert findings[0].severity is Severity.ERROR
        assert findings[0].loop == "i"
        assert findings[0].array == "a"

    def test_serial_recurrence_is_clean(self):
        b = KernelBuilder("serial_scan", Language.C)
        b.array("a", (64,))
        b.nest([("i", 1, 64)], [b.stmt(write("a", "i"), read("a", "i-1"), fadd=1)])
        assert _findings(b.build(), "RACE001") == ()

    def test_reduction_exempt(self):
        # gemm's k-recurrence is a recognized reduction; parallelizing
        # i (which the dependence does not cross) is race-free.
        b = KernelBuilder("par_gemm", Language.C)
        n = 16
        b.array("A", (n, n))
        b.array("B", (n, n))
        b.array("C", (n, n))
        b.nest(
            [("i", n), ("j", n), ("k", n)],
            [
                b.stmt(
                    update("C", "i", "j"),
                    read("A", "i", "k"),
                    read("B", "k", "j"),
                    fma=1,
                    reduction="k",
                )
            ],
            parallel=("i",),
        )
        assert _findings(b.build(), "RACE001") == ()

    def test_may_dependence_downgraded_to_warning(self):
        # i+j coupling defeats the exact tests: the race is possible,
        # not proven, and must surface as a WARNING.
        b = KernelBuilder("maybe_racy", Language.C)
        b.array("D", (40,))
        b.nest(
            [("i", 16), ("j", 16)],
            [b.stmt(write("D", "i+j"), read("D", "i+j-1"), fadd=1)],
            parallel=("i",),
        )
        findings = _findings(b.build(), "RACE001")
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)
        assert any("inconclusive" in f.message for f in findings)


class TestVec003:
    def test_innermost_recurrence_blocks_simd(self):
        findings = _findings(racy_kernel(), "VEC003")
        assert findings and findings[0].severity is Severity.WARNING
        assert "cannot be vectorized" in findings[0].message

    def test_fp_reduction_notes_reassociation(self):
        findings = _findings(gemm_kernel(), "VEC003")
        assert findings
        assert findings[0].severity is Severity.NOTE
        assert "reassociating" in findings[0].message


class TestInit004:
    def test_read_before_write_flagged(self):
        b = KernelBuilder("swapped", Language.C)
        b.array("t", (64,))
        b.array("x", (64,))
        b.nest(
            [("i", 64)],
            [
                b.stmt(write("x", "i"), read("t", "i"), fadd=1),
                b.stmt(write("t", "i"), read("x", "i"), fadd=1),
            ],
        )
        findings = _findings(b.build(), "INIT004")
        assert len(findings) == 1
        assert findings[0].array == "t"
        assert findings[0].statement == "S0"

    def test_write_then_read_is_clean(self):
        # t is written before it is read; x is an input that is never
        # overwritten; y is a pure output.  Nothing to flag.
        b = KernelBuilder("ordered", Language.C)
        b.array("t", (64,))
        b.array("x", (64,))
        b.array("y", (64,))
        b.nest(
            [("i", 64)],
            [
                b.stmt(write("t", "i"), read("x", "i"), fadd=1),
                b.stmt(write("y", "i"), read("t", "i"), fadd=1),
            ],
        )
        assert _findings(b.build(), "INIT004") == ()


class TestRed005:
    def test_unannotated_parallel_update_is_error(self):
        b = KernelBuilder("bad_sum", Language.C)
        b.array("acc", (1,))
        b.array("x", (64,))
        b.nest(
            [("i", 64)],
            [b.stmt(update("acc", 0), read("x", "i"), fadd=1)],
            parallel=("i",),
        )
        findings = _findings(b.build(), "RED005")
        assert findings and findings[0].severity is Severity.ERROR
        assert "without a matching reduction annotation" in findings[0].message

    def test_annotated_fp_reduction_warns_portability(self):
        b = KernelBuilder("fp_sum", Language.C)
        b.array("acc", (1,))
        b.array("x", (64,))
        b.nest(
            [("i", 64)],
            [b.stmt(update("acc", 0), read("x", "i"), fadd=1, reduction="i")],
            parallel=("i",),
        )
        findings = _findings(b.build(), "RED005")
        assert findings and findings[0].severity is Severity.WARNING
        assert "reassociates" in findings[0].message

    def test_moving_target_is_clean(self):
        b = KernelBuilder("axpy", Language.C)
        b.array("y", (64,))
        b.array("x", (64,))
        b.nest(
            [("i", 64)],
            [b.stmt(update("y", "i"), read("x", "i"), fma=1)],
            parallel=("i",),
        )
        assert _findings(b.build(), "RED005") == ()


class TestOpt010:
    def test_ijk_gemm_suggests_ikj(self):
        findings = _findings(gemm_kernel(), "OPT010")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity is Severity.WARNING
        assert "ikj" in finding.message
        assert "icc does, fcc does not" in finding.message

    def test_good_order_is_clean(self):
        assert _findings(gemm_kernel(order=("i", "k", "j")), "OPT010") == ()

    def test_machine_line_size_matters(self):
        # The stride cost counts cache lines; the context's machine
        # provides the line size, so the rule must run under any model.
        from repro.machine import xeon

        ctx = AnalysisContext(machine=xeon())
        findings = analyze_kernel(
            gemm_kernel(), rules=select_rules(["OPT010"]), ctx=ctx
        )
        assert findings, "ijk gemm loses on 64-byte lines too"


class TestBounds:
    def test_bnd002_through_rules(self):
        b = KernelBuilder("oob", Language.C)
        b.array("a", (8,))
        b.nest([("i", 16)], [b.stmt(write("a", "i"), fadd=1)])
        findings = _findings(b.build(), "BND002")
        assert findings and findings[0].severity is Severity.ERROR
        assert "spans" in findings[0].message
