"""Property tests for the dataflow framework, plus the port-fidelity
check: the rules rebuilt on dataflow facts must agree finding-for-
finding with the pre-port analyzer on every kernel of every suite
(the committed ``data/preport_findings.json`` fixture)."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticanalysis.dataflow import (
    MUST_DEFINED_LATTICE,
    RANGE_LATTICE,
    STRIDE_LATTICE,
    FixpointError,
    MapLattice,
    StridePattern,
    ValueRange,
    solve_forward,
)
from repro.suites import all_suites

FIXTURE = Path(__file__).parent / "data" / "preport_findings.json"
#: The rule set the fixture was recorded with (pre-divergence).
PREPORT_RULES = (
    "STRUCT001", "BND002", "RACE001", "VEC003", "INIT004", "RED005",
    "OPT010",
)


# -- lattice law strategies -------------------------------------------------

strides = st.sampled_from(list(StridePattern))
ranges = st.one_of(
    st.none(),
    st.tuples(st.integers(-50, 50), st.integers(0, 50)).map(
        lambda p: ValueRange(p[0], p[0] + p[1])
    ),
)
defsets = st.one_of(
    st.none(),
    st.frozensets(
        st.tuples(st.sampled_from("abc"), st.tuples(st.sampled_from("ijk"))),
        max_size=4,
    ),
)
stride_maps = st.dictionaries(st.sampled_from("xyz"), strides, max_size=3)

LATTICES = {
    "stride": (STRIDE_LATTICE, strides),
    "range": (RANGE_LATTICE, ranges),
    "must-defined": (MUST_DEFINED_LATTICE, defsets),
    "map-of-stride": (MapLattice(STRIDE_LATTICE), stride_maps),
}


@pytest.mark.parametrize("name", sorted(LATTICES))
def test_lattice_laws(name):
    """Join is commutative, associative, idempotent; bottom is neutral;
    join is monotone in both arguments (the property fixpoint
    termination rests on)."""
    lattice, elements = LATTICES[name]

    @settings(max_examples=200, deadline=None)
    @given(a=elements, b=elements, c=elements)
    def laws(a, b, c):
        join = lattice.join
        assert join(a, b) == join(b, a)
        assert join(a, join(b, c)) == join(join(a, b), c)
        assert join(a, a) == a
        assert join(a, lattice.bottom()) == a
        # a <= a v b and b <= a v b (join is an upper bound) ...
        ab = join(a, b)
        assert lattice.leq(a, ab) and lattice.leq(b, ab)
        # ... and monotone: a <= a v c implies (a v b) <= (a v c) v b.
        assert lattice.leq(ab, join(join(a, c), b))

    laws()


# -- fixpoint solver --------------------------------------------------------

@st.composite
def graphs(draw):
    """A small graph (cycles allowed) with a monotone constant-join
    transfer over the stride lattice."""
    n = draw(st.integers(1, 8))
    nodes = list(range(n))
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=2 * n,
        )
    )
    consts = draw(st.lists(strides, min_size=n, max_size=n))
    return nodes, edges, consts


@settings(max_examples=100, deadline=None)
@given(graphs())
def test_fixpoint_terminates_and_is_a_fixpoint(graph):
    """On any graph — cyclic included — a monotone transfer reaches a
    least fixpoint within the visit budget, and the result actually
    satisfies the dataflow equations."""
    nodes, edges, consts = graph
    succs = {n: tuple(t for s, t in edges if s == n) for n in nodes}
    preds = {n: [s for s, t in edges if t == n] for n in nodes}

    def transfer(n, value):
        return STRIDE_LATTICE.join(value, consts[n])

    result = solve_forward(
        nodes, lambda n: succs[n], transfer, STRIDE_LATTICE
    )
    for n in nodes:
        expect_in = STRIDE_LATTICE.bottom()
        for p in preds[n]:
            expect_in = STRIDE_LATTICE.join(expect_in, result.out_values[p])
        assert result.in_values[n] == expect_in
        assert result.out_values[n] == transfer(n, result.in_values[n])
        # Least fixpoint: no node exceeds the join of reachable consts.
        assert STRIDE_LATTICE.leq(consts[n], result.out_values[n])


def test_non_monotone_transfer_raises():
    """An oscillating transfer must exhaust the visit budget loudly
    instead of spinning forever."""
    def transfer(n, value):
        # Never maps its own output back to itself: the self-loop
        # below oscillates STRIDED <-> CONTIGUOUS forever.
        if value == StridePattern.STRIDED:
            return StridePattern.CONTIGUOUS
        return StridePattern.STRIDED

    with pytest.raises(FixpointError):
        solve_forward(
            [0],
            lambda n: (0,),  # self-loop
            transfer,
            STRIDE_LATTICE,
            max_visits=64,
        )


def test_boundary_values_enter_the_solution():
    boundary = {0: StridePattern.INDIRECT}
    result = solve_forward(
        [0, 1],
        lambda n: (1,) if n == 0 else (),
        lambda n, v: v,
        STRIDE_LATTICE,
        boundary=boundary,
    )
    assert result.out_values[1] == StridePattern.INDIRECT


# -- port fidelity ----------------------------------------------------------

def test_ported_rules_agree_with_preport_fixture_on_every_kernel():
    """The dataflow-ported rules reproduce the pre-port analyzer's
    findings byte-for-byte on all suite kernels.  Regenerating the
    fixture to make this pass defeats its purpose — a diff here means
    the port changed behavior."""
    from repro.staticanalysis import AnalysisContext, analyze_kernel, select_rules

    fixture = json.loads(FIXTURE.read_text())
    rules = select_rules(PREPORT_RULES)
    ctx = AnalysisContext()
    seen = set()
    mismatches = []
    for suite in all_suites():
        for bench in suite.benchmarks:
            for kernel in bench.kernels():
                key = f"{bench.full_name}:{kernel.name}"
                if key in seen:
                    continue
                seen.add(key)
                got = [
                    d.to_dict()
                    for d in analyze_kernel(kernel, rules=rules, ctx=ctx)
                ]
                if got != fixture.get(key, []):
                    mismatches.append(key)
    assert not mismatches, f"port drift on {mismatches}"
    assert seen == set(fixture), "kernel population drifted from fixture"
