"""Tests for the analysis driver: context memoization, caching,
telemetry integration, and benchmark-level analysis."""

from repro import telemetry
from repro.ir import KernelBuilder, Language, read, write
from repro.machine import a64fx, xeon
from repro.staticanalysis import (
    AnalysisContext,
    Severity,
    analyze_benchmark,
    analyze_kernel,
    max_severity,
    select_rules,
)
from repro.staticanalysis.driver import (
    FINDINGS_COUNTER_PREFIX,
    AnalysisCache,
    analyze_benchmark_cached,
    analyze_kernel_cached,
    worst_severity,
)
from repro.suites import get_benchmark
from repro.telemetry import SPAN_LINT, Telemetry


def racy_kernel(name="racy", n=64):
    b = KernelBuilder(name, Language.C)
    b.array("a", (n,))
    b.nest(
        [("i", 1, n)],
        [b.stmt(write("a", "i"), read("a", "i-1"), fadd=1)],
        parallel=("i",),
    )
    return b.build()


class TestAnalyzeKernel:
    def test_findings_bound_to_kernel(self):
        findings = analyze_kernel(racy_kernel())
        assert findings
        assert all(f.kernel == "racy" for f in findings)

    def test_rule_filter(self):
        findings = analyze_kernel(
            racy_kernel(), rules=select_rules(["RACE001"])
        )
        assert findings
        assert {f.rule_id for f in findings} == {"RACE001"}

    def test_shared_context_memoizes_deps(self):
        ctx = AnalysisContext()
        kernel = racy_kernel()
        analyze_kernel(kernel, ctx=ctx)
        cached = dict(ctx._deps)
        analyze_kernel(kernel, ctx=ctx)
        # Second walk reuses the same dependence sets (same id keys).
        assert dict(ctx._deps) == cached

    def test_machine_parameter(self):
        # Both machine models must produce findings for the racy kernel.
        assert analyze_kernel(racy_kernel(), machine=a64fx())
        assert analyze_kernel(racy_kernel(), machine=xeon())


class TestCachedEntryPoints:
    def test_kernel_cache_identity(self):
        kernel = racy_kernel()
        machine = a64fx()
        first = analyze_kernel_cached(kernel, machine)
        assert analyze_kernel_cached(kernel, machine) is first

    def test_kernel_cache_keyed_by_machine(self):
        kernel = racy_kernel()
        first = analyze_kernel_cached(kernel, a64fx())
        other = analyze_kernel_cached(kernel, xeon())
        assert first is not other

    def test_benchmark_cache_identity(self):
        bench = get_benchmark("polybench.2mm")
        machine = a64fx()
        first = analyze_benchmark_cached(bench, machine)
        assert analyze_benchmark_cached(bench, machine) is first
        assert any(f.rule_id == "OPT010" for f in first)

    def test_no_duplicates_on_warm_memo_reemission(self):
        """Regression: re-analyzing a benchmark through the memoized
        entry point used to re-emit each shared kernel's findings once
        per arrival, doubling the report on warm caches."""
        bench = get_benchmark("polybench.2mm")
        machine = a64fx()
        cold = analyze_benchmark_cached(bench, machine)
        warm = analyze_benchmark_cached(bench, machine)
        assert warm == cold
        assert len(set(warm)) == len(warm), "duplicate findings re-emitted"


class TestAnalysisCache:
    def test_persistent_round_trip(self, tmp_path):
        kernel = racy_kernel()
        machine = a64fx()
        cache = AnalysisCache(tmp_path / "analysis")
        assert cache.get(kernel, machine) is None
        diags = analyze_kernel(kernel, machine=machine)
        cache.put(kernel, machine, diags)
        assert cache.get(kernel, machine) == diags

    def test_warm_disk_cache_does_not_duplicate(self, tmp_path):
        """Regression companion to the memo test above, across the
        persistent layer: a disk hit must re-emit the findings exactly
        once."""
        bench = get_benchmark("polybench.3mm")
        machine = a64fx()
        # Every run below must simulate a fresh process: earlier tests in
        # the session may already have memoized this benchmark, and a memo
        # hit would bypass the disk cache entirely.
        from repro.staticanalysis import driver as driver_mod

        driver_mod._BENCH_DIAGNOSTICS.clear()
        driver_mod._KERNEL_DIAGNOSTICS.clear()
        cold_cache = AnalysisCache(tmp_path / "analysis")
        cold = analyze_benchmark_cached(bench, machine, cold_cache)
        driver_mod._BENCH_DIAGNOSTICS.clear()
        driver_mod._KERNEL_DIAGNOSTICS.clear()
        warm_cache = AnalysisCache(tmp_path / "analysis")
        warm = analyze_benchmark_cached(bench, machine, warm_cache)
        assert warm == cold
        assert len(set(warm)) == len(warm)
        assert warm_cache.hits > 0 and warm_cache.misses == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        kernel = racy_kernel()
        machine = a64fx()
        cache = AnalysisCache(tmp_path / "analysis")
        diags = analyze_kernel(kernel, machine=machine)
        cache.put(kernel, machine, diags)
        for entry in (tmp_path / "analysis").rglob("*"):
            if entry.is_file():
                entry.write_text("{corrupt")
        assert cache.get(kernel, machine) is None

    def test_keyed_by_machine(self, tmp_path):
        kernel = racy_kernel()
        cache = AnalysisCache(tmp_path / "analysis")
        cache.put(kernel, a64fx(), analyze_kernel(kernel, machine=a64fx()))
        assert cache.get(kernel, xeon()) is None


class TestAnalyzeBenchmark:
    def test_2mm_flags_interchange(self):
        findings = analyze_benchmark(get_benchmark("polybench.2mm"))
        opt = [f for f in findings if f.rule_id == "OPT010"]
        assert opt, "the paper's 2mm interchange anomaly must be flagged"
        assert all("icc does, fcc does not" in f.message for f in opt)

    def test_3mm_flags_interchange(self):
        findings = analyze_benchmark(get_benchmark("polybench.3mm"))
        assert any(f.rule_id == "OPT010" for f in findings)


class TestTelemetry:
    def test_span_and_counters(self):
        recorder = Telemetry()
        with telemetry.active(recorder):
            analyze_kernel(racy_kernel())
        spans = [s for s in recorder.spans if s.name == SPAN_LINT]
        assert spans and spans[0].attrs["kernel"] == "racy"
        counters = recorder.metrics.snapshot()["counters"]
        race_counter = FINDINGS_COUNTER_PREFIX + "RACE001"
        assert counters.get(race_counter, 0) >= 1


class TestWorstSeverity:
    def test_matches_max_severity(self):
        findings = analyze_kernel(racy_kernel())
        assert worst_severity(findings) is max_severity(findings)
        assert worst_severity(findings) is Severity.ERROR
        assert worst_severity(()) is None
