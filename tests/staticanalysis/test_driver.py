"""Tests for the analysis driver: context memoization, caching,
telemetry integration, and benchmark-level analysis."""

from repro import telemetry
from repro.ir import KernelBuilder, Language, read, write
from repro.machine import a64fx, xeon
from repro.staticanalysis import (
    AnalysisContext,
    Severity,
    analyze_benchmark,
    analyze_kernel,
    max_severity,
    select_rules,
)
from repro.staticanalysis.driver import (
    FINDINGS_COUNTER_PREFIX,
    analyze_benchmark_cached,
    analyze_kernel_cached,
    worst_severity,
)
from repro.suites import get_benchmark
from repro.telemetry import SPAN_LINT, Telemetry


def racy_kernel(name="racy", n=64):
    b = KernelBuilder(name, Language.C)
    b.array("a", (n,))
    b.nest(
        [("i", 1, n)],
        [b.stmt(write("a", "i"), read("a", "i-1"), fadd=1)],
        parallel=("i",),
    )
    return b.build()


class TestAnalyzeKernel:
    def test_findings_bound_to_kernel(self):
        findings = analyze_kernel(racy_kernel())
        assert findings
        assert all(f.kernel == "racy" for f in findings)

    def test_rule_filter(self):
        findings = analyze_kernel(
            racy_kernel(), rules=select_rules(["RACE001"])
        )
        assert findings
        assert {f.rule_id for f in findings} == {"RACE001"}

    def test_shared_context_memoizes_deps(self):
        ctx = AnalysisContext()
        kernel = racy_kernel()
        analyze_kernel(kernel, ctx=ctx)
        cached = dict(ctx._deps)
        analyze_kernel(kernel, ctx=ctx)
        # Second walk reuses the same dependence sets (same id keys).
        assert dict(ctx._deps) == cached

    def test_machine_parameter(self):
        # Both machine models must produce findings for the racy kernel.
        assert analyze_kernel(racy_kernel(), machine=a64fx())
        assert analyze_kernel(racy_kernel(), machine=xeon())


class TestCachedEntryPoints:
    def test_kernel_cache_identity(self):
        kernel = racy_kernel()
        machine = a64fx()
        first = analyze_kernel_cached(kernel, machine)
        assert analyze_kernel_cached(kernel, machine) is first

    def test_kernel_cache_keyed_by_machine(self):
        kernel = racy_kernel()
        first = analyze_kernel_cached(kernel, a64fx())
        other = analyze_kernel_cached(kernel, xeon())
        assert first is not other

    def test_benchmark_cache_identity(self):
        bench = get_benchmark("polybench.2mm")
        machine = a64fx()
        first = analyze_benchmark_cached(bench, machine)
        assert analyze_benchmark_cached(bench, machine) is first
        assert any(f.rule_id == "OPT010" for f in first)


class TestAnalyzeBenchmark:
    def test_2mm_flags_interchange(self):
        findings = analyze_benchmark(get_benchmark("polybench.2mm"))
        opt = [f for f in findings if f.rule_id == "OPT010"]
        assert opt, "the paper's 2mm interchange anomaly must be flagged"
        assert all("icc does, fcc does not" in f.message for f in opt)

    def test_3mm_flags_interchange(self):
        findings = analyze_benchmark(get_benchmark("polybench.3mm"))
        assert any(f.rule_id == "OPT010" for f in findings)


class TestTelemetry:
    def test_span_and_counters(self):
        recorder = Telemetry()
        with telemetry.active(recorder):
            analyze_kernel(racy_kernel())
        spans = [s for s in recorder.spans if s.name == SPAN_LINT]
        assert spans and spans[0].attrs["kernel"] == "racy"
        counters = recorder.metrics.snapshot()["counters"]
        race_counter = FINDINGS_COUNTER_PREFIX + "RACE001"
        assert counters.get(race_counter, 0) >= 1


class TestWorstSeverity:
    def test_matches_max_severity(self):
        findings = analyze_kernel(racy_kernel())
        assert worst_severity(findings) is max_severity(findings)
        assert worst_severity(findings) is Severity.ERROR
        assert worst_severity(()) is None
