"""Tests for the lint output formats: text, JSON, and SARIF 2.1.0."""

import json

from repro.staticanalysis import (
    Category,
    Diagnostic,
    Severity,
    analyze_benchmark,
    findings_to_json,
    render_text,
    to_sarif,
    validate_sarif,
)
from repro.staticanalysis.sarif import (
    SARIF_VERSION,
    TOOL_NAME,
    URI_BASE_ID,
    render_kernel_ir,
)
from repro.suites import get_benchmark


def _diag(rule="RACE001", severity=Severity.ERROR, **kw):
    return Diagnostic(
        rule_id=rule,
        severity=severity,
        category=Category.CORRECTNESS,
        message=kw.pop("message", "iterations race"),
        **kw,
    )


class TestSarif:
    def test_empty_document_validates(self):
        doc = to_sarif(())
        assert validate_sarif(doc) == []
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["tool"]["driver"]["name"] == TOOL_NAME

    def test_rule_catalog_embedded(self):
        doc = to_sarif(())
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "RACE001" in ids and "OPT010" in ids

    def test_results_carry_logical_locations(self):
        doc = to_sarif([_diag(kernel="2mm", nest="nest0", statement="S0")])
        assert validate_sarif(doc) == []
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "RACE001"
        assert result["level"] == "error"
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "2mm/nest0/S0"

    def test_validator_catches_drift(self):
        doc = to_sarif([_diag()])
        doc["runs"][0]["results"][0]["ruleId"] = "GHOST999"
        assert any("GHOST999" in p for p in validate_sarif(doc))
        bad_version = to_sarif(())
        bad_version["version"] = "1.0.0"
        assert validate_sarif(bad_version)

    def test_real_suite_findings_validate(self):
        findings = analyze_benchmark(get_benchmark("polybench.2mm"))
        assert findings
        doc = to_sarif(findings)
        assert validate_sarif(doc) == []
        # The document is plain JSON-serializable data.
        json.dumps(doc)


class TestPhysicalLocations:
    def _doc(self, name="polybench.2mm"):
        bench = get_benchmark(name)
        kernels = list(bench.kernels())
        findings = analyze_benchmark(bench)
        return to_sarif(findings, kernels=kernels), findings, kernels

    def test_artifacts_are_repo_relative_and_deterministic(self):
        doc, _findings, _kernels = self._doc()
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert URI_BASE_ID in run["originalUriBaseIds"]
        uris = [a["location"]["uri"] for a in run["artifacts"]]
        assert uris == sorted(uris)
        for uri in uris:
            assert not uri.startswith("/") and "://" not in uri
            assert uri.startswith("ir/") and uri.endswith(".ir")
        # Same inputs -> byte-identical document (no ids, paths, time).
        doc2, _f, _k = self._doc()
        assert json.dumps(doc) == json.dumps(doc2)

    def test_regions_point_into_the_ir_rendering(self):
        doc, findings, kernels = self._doc()
        rendered = {k.name: render_kernel_ir(k).splitlines() for k in kernels}
        for result in doc["runs"][0]["results"]:
            physical = result["locations"][0]["physicalLocation"]
            uri = physical["artifactLocation"]["uri"]
            name = uri[len("ir/"):-len(".ir")]
            region = physical["region"]
            lines = rendered[name]
            assert 1 <= region["startLine"] <= region["endLine"] <= len(lines)
            nest = result["properties"].get("nest")
            if nest:
                block = "\n".join(
                    lines[region["startLine"] - 1:region["endLine"]]
                )
                assert "for " in block or ":" in block

    def test_interchange_findings_carry_fixes(self):
        doc, _findings, kernels = self._doc()
        fixed = [
            r for r in doc["runs"][0]["results"]
            if r["ruleId"] in ("OPT010", "DIV001")
        ]
        assert fixed
        kernel = {k.name: k for k in kernels}["2mm"]
        loop_vars = set(kernel.nests[0].loop_vars)
        for result in fixed:
            fix = result["fixes"][0]
            change = fix["artifactChanges"][0]
            assert change["artifactLocation"]["uriBaseId"] == URI_BASE_ID
            replacement = change["replacements"][0]
            inserted = replacement["insertedContent"]["text"].splitlines()
            # One header line per loop, each a real "for <var>" header.
            assert len(inserted) == len(loop_vars)
            assert {line.split()[1] for line in inserted} == loop_vars
            region = replacement["deletedRegion"]
            assert region["endLine"] - region["startLine"] + 1 == len(inserted)

    def test_fix_matches_the_hinted_order(self):
        doc, findings, _kernels = self._doc()
        results = doc["runs"][0]["results"]
        for diag, result in zip(findings, results):
            if result["ruleId"] != "OPT010" or "fixes" not in result:
                continue
            hinted = diag.hint.split("rewrite the nest as ")[1].split()[0]
            inserted = result["fixes"][0]["artifactChanges"][0][
                "replacements"][0]["insertedContent"]["text"]
            order = "".join(
                line.split()[1] for line in inserted.splitlines()
            )
            assert order == hinted

    def test_validator_rejects_absolute_uris_and_bad_fixes(self):
        doc, _findings, _kernels = self._doc()
        run = doc["runs"][0]
        run["artifacts"][0]["location"]["uri"] = "/absolute/path.ir"
        assert any("relative" in p for p in validate_sarif(doc))
        doc2, _f, _k = self._doc()
        fixed = next(
            r for r in doc2["runs"][0]["results"] if r.get("fixes")
        )
        fixed["fixes"][0]["artifactChanges"] = []
        assert any("artifactChanges" in p for p in validate_sarif(doc2))

    def test_kernels_without_findings_declare_no_artifact(self):
        doc, _findings, _kernels = self._doc()
        referenced = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in doc["runs"][0]["results"]
        }
        declared = {
            a["location"]["uri"] for a in doc["runs"][0]["artifacts"]
        }
        assert declared == referenced


class TestTextAndJson:
    def test_render_text_summary(self):
        text = render_text(
            [_diag(), _diag(rule="OPT010", severity=Severity.WARNING)]
        )
        assert "2 finding(s): 1 error(s), 1 warning(s), 0 note(s)" in text
        assert "RACE001" in text

    def test_render_text_empty(self):
        assert "0 finding(s)" in render_text(())

    def test_findings_to_json_roundtrip(self):
        findings = [_diag(kernel="2mm", hint="privatize")]
        raw = json.loads(findings_to_json(findings))
        assert [Diagnostic.from_dict(d) for d in raw["findings"]] == findings
