"""Tests for the lint output formats: text, JSON, and SARIF 2.1.0."""

import json

from repro.staticanalysis import (
    Category,
    Diagnostic,
    Severity,
    analyze_benchmark,
    findings_to_json,
    render_text,
    to_sarif,
    validate_sarif,
)
from repro.staticanalysis.sarif import SARIF_VERSION, TOOL_NAME
from repro.suites import get_benchmark


def _diag(rule="RACE001", severity=Severity.ERROR, **kw):
    return Diagnostic(
        rule_id=rule,
        severity=severity,
        category=Category.CORRECTNESS,
        message=kw.pop("message", "iterations race"),
        **kw,
    )


class TestSarif:
    def test_empty_document_validates(self):
        doc = to_sarif(())
        assert validate_sarif(doc) == []
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["tool"]["driver"]["name"] == TOOL_NAME

    def test_rule_catalog_embedded(self):
        doc = to_sarif(())
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "RACE001" in ids and "OPT010" in ids

    def test_results_carry_logical_locations(self):
        doc = to_sarif([_diag(kernel="2mm", nest="nest0", statement="S0")])
        assert validate_sarif(doc) == []
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "RACE001"
        assert result["level"] == "error"
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "2mm/nest0/S0"

    def test_validator_catches_drift(self):
        doc = to_sarif([_diag()])
        doc["runs"][0]["results"][0]["ruleId"] = "GHOST999"
        assert any("GHOST999" in p for p in validate_sarif(doc))
        bad_version = to_sarif(())
        bad_version["version"] = "1.0.0"
        assert validate_sarif(bad_version)

    def test_real_suite_findings_validate(self):
        findings = analyze_benchmark(get_benchmark("polybench.2mm"))
        assert findings
        doc = to_sarif(findings)
        assert validate_sarif(doc) == []
        # The document is plain JSON-serializable data.
        json.dumps(doc)


class TestTextAndJson:
    def test_render_text_summary(self):
        text = render_text(
            [_diag(), _diag(rule="OPT010", severity=Severity.WARNING)]
        )
        assert "2 finding(s): 1 error(s), 1 warning(s), 0 note(s)" in text
        assert "RACE001" in text

    def test_render_text_empty(self):
        assert "0 finding(s)" in render_text(())

    def test_findings_to_json_roundtrip(self):
        findings = [_diag(kernel="2mm", hint="privatize")]
        raw = json.loads(findings_to_json(findings))
        assert [Diagnostic.from_dict(d) for d in raw["findings"]] == findings
