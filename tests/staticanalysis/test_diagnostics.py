"""Tests for the diagnostics model: severities, findings, sinks."""

import pytest

from repro.staticanalysis import (
    Category,
    Diagnostic,
    DiagnosticSink,
    LintError,
    Severity,
    has_at_least,
    max_severity,
)


def _diag(rule="RACE001", severity=Severity.ERROR, **kw):
    return Diagnostic(
        rule_id=rule,
        severity=severity,
        category=Category.CORRECTNESS,
        message=kw.pop("message", "iterations race"),
        **kw,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.NOTE.rank
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.NOTE.at_least(Severity.WARNING)

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING
        assert Severity.parse(Severity.NOTE) is Severity.NOTE

    def test_parse_unknown(self):
        with pytest.raises(LintError, match="unknown severity"):
            Severity.parse("fatal")


class TestDiagnostic:
    def test_requires_rule_and_message(self):
        with pytest.raises(LintError):
            _diag(rule="")
        with pytest.raises(LintError):
            _diag(message="")

    def test_location(self):
        d = _diag(kernel="2mm", nest="nest0", statement="S1")
        assert d.location == "2mm/nest0/S1"
        assert _diag().location == ""
        assert _diag(kernel="2mm", statement="S1").location == "2mm/S1"

    def test_with_kernel(self):
        d = _diag(nest="nest0").with_kernel("gemm")
        assert d.kernel == "gemm"
        assert d.nest == "nest0"

    def test_roundtrip(self):
        d = _diag(kernel="2mm", nest="nest0", array="C", loop="j", hint="fix it")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_to_dict_omits_empty(self):
        raw = _diag().to_dict()
        assert set(raw) == {"rule", "severity", "category", "message"}

    def test_from_dict_malformed(self):
        with pytest.raises(LintError, match="malformed"):
            Diagnostic.from_dict({"rule": "X001"})

    def test_str_contains_parts(self):
        text = str(_diag(kernel="2mm", hint="privatize"))
        assert "error: RACE001:" in text
        assert "[2mm]" in text
        assert "(privatize)" in text


class TestSink:
    def test_collects_in_order(self):
        sink = DiagnosticSink()
        first = _diag(severity=Severity.NOTE)
        second = _diag(rule="OPT010", severity=Severity.WARNING)
        sink.emit(first)
        sink.extend([second])
        assert sink.snapshot() == (first, second)
        assert len(sink) == 2

    def test_max_severity_and_filter(self):
        sink = DiagnosticSink()
        assert sink.max_severity is None
        sink.emit(_diag(severity=Severity.NOTE))
        sink.emit(_diag(severity=Severity.ERROR))
        assert sink.max_severity is Severity.ERROR
        assert len(sink.at_least(Severity.WARNING)) == 1

    def test_by_rule(self):
        sink = DiagnosticSink()
        sink.emit(_diag())
        sink.emit(_diag(rule="OPT010", severity=Severity.WARNING))
        sink.emit(_diag())
        grouped = sink.by_rule()
        assert list(grouped) == ["RACE001", "OPT010"]
        assert len(grouped["RACE001"]) == 2


class TestModuleHelpers:
    def test_max_severity_empty(self):
        assert max_severity(()) is None

    def test_has_at_least(self):
        diags = [_diag(severity=Severity.WARNING)]
        assert has_at_least(diags, Severity.WARNING)
        assert not has_at_least(diags, Severity.ERROR)
        assert not has_at_least((), Severity.NOTE)
