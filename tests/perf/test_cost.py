"""Tests for the benchmark-level cost model."""

import pytest

from repro.compilers.base import CompileStatus
from repro.errors import HarnessError
from repro.ir import Language
from repro.libs.mathlib import LibraryCall, LibraryKind
from repro.machine import Placement
from repro.perf.cost import CompilationCache, benchmark_model
from repro.suites.base import Benchmark, MpiModel, ParallelKind, ScalingKind, WorkUnit
from tests.conftest import build_gemm, build_stream


def _bench(units, parallel=ParallelKind.OPENMP, **kwargs):
    return Benchmark(
        name="t",
        suite="test",
        language=Language.C,
        units=units,
        parallel=parallel,
        **kwargs,
    )


class TestPlacementValidation:
    def test_serial_benchmark_rejects_parallel_placement(self, a64fx_machine, gemm_kernel):
        bench = _bench((WorkUnit(kernel=gemm_kernel),), ParallelKind.SERIAL)
        with pytest.raises(HarnessError):
            benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 2))

    def test_openmp_benchmark_rejects_multirank(self, a64fx_machine, stream_kernel):
        bench = _bench((WorkUnit(kernel=stream_kernel),), ParallelKind.OPENMP)
        with pytest.raises(HarnessError):
            benchmark_model(bench, "LLVM", a64fx_machine, Placement(2, 2))

    def test_pow2_enforced(self, a64fx_machine, stream_kernel):
        bench = _bench(
            (WorkUnit(kernel=stream_kernel),),
            ParallelKind.MPI_OPENMP,
            pow2_ranks=True,
        )
        with pytest.raises(HarnessError):
            benchmark_model(bench, "LLVM", a64fx_machine, Placement(3, 4))


class TestScalingBehaviour:
    def test_invocations_scale_time(self, a64fx_machine, stream_kernel):
        one = _bench((WorkUnit(kernel=stream_kernel, invocations=1),))
        ten = _bench((WorkUnit(kernel=stream_kernel, invocations=10),))
        p = Placement(1, 12)
        t1 = benchmark_model(one, "LLVM", a64fx_machine, p).time_s
        t10 = benchmark_model(ten, "LLVM", a64fx_machine, p).time_s
        assert t10 == pytest.approx(10 * t1, rel=0.01)

    def test_strong_scaling_splits_work(self, a64fx_machine):
        kernel = build_stream(1 << 24)
        bench = _bench(
            (WorkUnit(kernel=kernel),),
            ParallelKind.MPI_OPENMP,
            mpi=MpiModel(0.0),
        )
        t1 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 12)).time_s
        t4 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(4, 12)).time_s
        assert t4 < 0.4 * t1

    def test_weak_scaling_constant_per_rank(self, a64fx_machine):
        kernel = build_stream(1 << 24)
        bench = _bench(
            (WorkUnit(kernel=kernel),),
            ParallelKind.MPI_OPENMP,
            scaling=ScalingKind.WEAK,
            mpi=MpiModel(0.0),
        )
        t1 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 12)).time_s
        t4 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(4, 12)).time_s
        assert t4 == pytest.approx(t1, rel=0.1)

    def test_comm_time_added(self, a64fx_machine):
        kernel = build_stream(1 << 24)
        with_comm = _bench(
            (WorkUnit(kernel=kernel),), ParallelKind.MPI_OPENMP, mpi=MpiModel(0.2)
        )
        without = _bench(
            (WorkUnit(kernel=kernel),), ParallelKind.MPI_OPENMP, mpi=MpiModel(0.0)
        )
        p = Placement(4, 12)
        a = benchmark_model(with_comm, "LLVM", a64fx_machine, p)
        b = benchmark_model(without, "LLVM", a64fx_machine, p)
        assert a.comm_s > 0 and a.time_s > b.time_s

    def test_max_useful_threads_caps(self, a64fx_machine):
        from repro.suites.kernels_common import divsqrt_physics

        kernel = divsqrt_physics("d", 1 << 22, Language.C)
        capped = _bench((WorkUnit(kernel=kernel),), max_useful_threads=8)
        uncapped = _bench((WorkUnit(kernel=kernel),))
        p = Placement(1, 48)
        t_capped = benchmark_model(capped, "LLVM", a64fx_machine, p).time_s
        t_uncapped = benchmark_model(uncapped, "LLVM", a64fx_machine, p).time_s
        assert t_capped > 2 * t_uncapped


class TestLibraryUnits:
    def test_library_time_compiler_independent(self, a64fx_machine):
        bench = _bench(
            (WorkUnit(library=LibraryCall(LibraryKind.BLAS3, flops=1e12)),),
            ParallelKind.OPENMP,
        )
        p = Placement(1, 48)
        times = {
            v: benchmark_model(bench, v, a64fx_machine, p).time_s
            for v in ("FJtrad", "LLVM", "GNU")
        }
        assert max(times.values()) == pytest.approx(min(times.values()), rel=1e-9)

    def test_mixed_unit_breakdown(self, a64fx_machine, stream_kernel):
        bench = _bench(
            (
                WorkUnit(kernel=stream_kernel),
                WorkUnit(library=LibraryCall(LibraryKind.BLAS3, flops=1e11)),
            )
        )
        r = benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 12))
        assert len(r.units) == 2
        assert r.units[0].kernel_s > 0
        assert r.units[1].library_s > 0


class TestFailurePropagation:
    def test_compile_error_gives_infinite_time(self, a64fx_machine):
        from repro.suites.microkernels import _kernels

        k22 = next(k for k, _ in _kernels() if k.name == "k22")
        bench = Benchmark(
            name="k22",
            suite="test",
            language=k22.language,
            units=(WorkUnit(kernel=k22),),
            parallel=ParallelKind.OPENMP,
        )
        r = benchmark_model(bench, "FJclang", a64fx_machine, Placement(1, 12))
        assert r.status is CompileStatus.COMPILE_ERROR
        assert r.time_s == float("inf")
        assert not r.valid

    def test_cache_reuses_compilations(self, a64fx_machine, stream_kernel):
        cache = CompilationCache()
        bench = _bench((WorkUnit(kernel=stream_kernel),))
        r1 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 12), cache=cache)
        r2 = benchmark_model(bench, "LLVM", a64fx_machine, Placement(1, 48), cache=cache)
        assert len(cache._cache) == 1
        assert r1.time_s != r2.time_s

    def test_anomaly_multiplier_applied(self, a64fx_machine):
        from repro.suites.polybench_la import mvt

        bench = Benchmark(
            name="mvt",
            suite="test",
            language=Language.C,
            units=(WorkUnit(kernel=mvt()),),
            parallel=ParallelKind.SERIAL,
            pinned_single_core=True,
        )
        p = Placement(1, 1)
        fj = benchmark_model(bench, "FJtrad", a64fx_machine, p).time_s
        fjc = benchmark_model(bench, "FJclang", a64fx_machine, p).time_s
        # FJtrad carries the x64 pathological-codegen multiplier
        assert fj > 10 * fjc
