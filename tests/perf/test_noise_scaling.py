"""Tests for the noise model and parallel-overhead helpers."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Placement, Topology
from repro.perf.noise import noise_multiplier, timer_resolution_floor
from repro.perf.scaling import numa_spill_penalty, omp_region_overhead_s
from repro.suites.base import MpiModel


class TestNoise:
    def test_deterministic(self):
        a = noise_multiplier(0.05, "bench", "GNU", 3)
        b = noise_multiplier(0.05, "bench", "GNU", 3)
        assert a == b

    def test_key_sensitivity(self):
        assert noise_multiplier(0.05, "bench", "GNU", 3) != noise_multiplier(
            0.05, "bench", "GNU", 4
        )

    def test_zero_cv_is_one(self):
        assert noise_multiplier(0.0, "x") == 1.0

    def test_never_faster_than_ideal(self):
        for i in range(200):
            assert noise_multiplier(0.1, "b", i) >= 1.0

    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            noise_multiplier(-0.1, "x")

    def test_sample_cv_tracks_parameter(self):
        # folded-normal multipliers: sample CV should be same order as cv
        samples = [noise_multiplier(0.22, "stream", i) for i in range(500)]
        cv = statistics.stdev(samples) / statistics.fmean(samples)
        assert 0.08 < cv < 0.35

    def test_small_cv_small_spread(self):
        samples = [noise_multiplier(0.001, "amg", i) for i in range(100)]
        assert max(samples) < 1.01

    @settings(max_examples=30)
    @given(st.floats(0.0, 0.5), st.integers(0, 1000))
    def test_multiplier_bounded_below(self, cv, key):
        assert noise_multiplier(cv, key) >= 1.0

    def test_timer_floor(self):
        assert timer_resolution_floor(1e-9) == 1e-6
        assert timer_resolution_floor(0.5) == 0.5


class TestNoiseMoments:
    """The docstring's distributional contract: exp(sigma*|Z|) with
    support [1, inf), half-normal log, and the documented median/mean."""

    N = 4000

    def _samples(self, cv):
        return [noise_multiplier(cv, "moments", cv, i) for i in range(self.N)]

    @pytest.mark.parametrize("cv", [0.005, 0.05, 0.22])
    def test_support_is_one_to_infinity(self, cv):
        samples = self._samples(cv)
        assert min(samples) >= 1.0
        # the infimum 1.0 is approached but the multiplier sits above it
        assert min(samples) < 1.0 + 3 * cv

    @pytest.mark.parametrize("cv", [0.005, 0.05, 0.22])
    def test_median_is_half_normal_median(self, cv):
        import math

        sigma = math.sqrt(math.log(1.0 + cv * cv))
        expected = math.exp(0.67448975 * sigma)
        assert statistics.median(self._samples(cv)) == pytest.approx(
            expected, rel=5 * cv / self.N**0.5 + 1e-4
        )

    @pytest.mark.parametrize("cv", [0.005, 0.05, 0.22])
    def test_mean_is_folded_lognormal_mean(self, cv):
        import math

        sigma = math.sqrt(math.log(1.0 + cv * cv))
        phi = 0.5 * (1.0 + math.erf(sigma / math.sqrt(2.0)))
        expected = 2.0 * math.exp(sigma * sigma / 2.0) * phi
        assert statistics.fmean(self._samples(cv)) == pytest.approx(
            expected, rel=5 * cv / self.N**0.5 + 1e-4
        )
        # and the small-cv linearization quoted in the docstring
        assert expected == pytest.approx(
            1.0 + sigma * math.sqrt(2.0 / math.pi), abs=sigma * sigma
        )

    def test_mean_strictly_above_one(self):
        assert statistics.fmean(self._samples(0.05)) > 1.0

    def test_bit_identity_spot_values(self):
        # The compatibility contract: every journaled trial time, cache
        # key and golden campaign result depends on these bit-for-bit.
        assert noise_multiplier(0.0, "any") == 1.0
        assert noise_multiplier(0.05, "bench", "GNU", 3) == 1.0590140867878224
        assert noise_multiplier(0.22, "stream", 0) == 1.0747947197300007
        assert (
            noise_multiplier(0.005, "explore", "micro.k04", "GNU", "1x12", 0)
            == 1.0000560899441728
        )


class TestOmpOverhead:
    def test_single_thread_free(self):
        assert omp_region_overhead_s(2.0, 1.0, 1) == 0.0

    def test_grows_with_threads(self):
        t12 = omp_region_overhead_s(2.0, 1.0, 12)
        t48 = omp_region_overhead_s(2.0, 1.0, 48)
        assert t48 > t12

    def test_reference_at_12_threads(self):
        assert omp_region_overhead_s(2.0, 1.0, 12) == pytest.approx(3e-6, rel=0.01)

    def test_barriers_scale(self):
        one = omp_region_overhead_s(2.0, 1.0, 12, barriers_per_invocation=1)
        four = omp_region_overhead_s(2.0, 1.0, 12, barriers_per_invocation=4)
        assert four > one


class TestNumaSpill:
    def _topo(self):
        return Topology("t", 4, 12)

    def test_no_penalty_within_domain(self):
        assert numa_spill_penalty(Placement(4, 12), self._topo()) == 1.0

    def test_flat_48_thread_run_penalized(self):
        assert numa_spill_penalty(Placement(1, 48), self._topo()) > 1.5

    def test_partial_spill_smaller(self):
        p2 = numa_spill_penalty(Placement(1, 24), self._topo())
        p4 = numa_spill_penalty(Placement(1, 48), self._topo())
        assert 1.0 < p2 < p4


class TestMpiModel:
    def test_no_comm_single_rank(self):
        assert MpiModel(0.2, "halo").comm_time_s(10.0, 1) == 0.0

    def test_no_comm_zero_fraction(self):
        assert MpiModel(0.0).comm_time_s(10.0, 8) == 0.0

    def test_reference_fraction_at_4_ranks(self):
        m = MpiModel(0.1, "allreduce")
        assert m.comm_time_s(10.0, 4) == pytest.approx(1.0, rel=0.02)

    def test_alltoall_grows_linearly(self):
        m = MpiModel(0.1, "alltoall")
        assert m.comm_time_s(10.0, 16) == pytest.approx(4 * m.comm_time_s(10.0, 4), rel=0.01)

    def test_halo_grows_slowly(self):
        m = MpiModel(0.1, "halo")
        assert m.comm_time_s(10.0, 32) < 2 * m.comm_time_s(10.0, 4)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            MpiModel(0.1, "butterfly").comm_time_s(10.0, 4)
