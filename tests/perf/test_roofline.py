"""Tests for the roofline analysis."""

import pytest

from repro.compilers import compile_kernel
from repro.machine import a64fx, xeon
from repro.perf.roofline import machine_balance, roofline_point, roofline_table
from tests.conftest import build_gemm, build_stream


def _point(variant, kernel, machine, **kw):
    ck = compile_kernel(variant, kernel, machine)
    assert ck.ok
    return roofline_point(ck.nest_infos[0], machine, **kw)


class TestMachineBalance:
    def test_a64fx_balance_near_4(self, a64fx_machine):
        # ~3.38 TF/s over ~0.84 TB/s sustained: balance ~4 F/B
        assert 2.5 <= machine_balance(a64fx_machine) <= 6.0

    def test_xeon_more_compute_skewed(self, a64fx_machine, xeon_machine):
        # the Xeon has far less bandwidth per flop
        assert machine_balance(xeon_machine) > machine_balance(a64fx_machine)

    def test_single_core_balance_differs(self, a64fx_machine):
        assert machine_balance(a64fx_machine, cores=1) != machine_balance(a64fx_machine)


class TestRooflinePoints:
    def test_stream_is_memory_bound(self, a64fx_machine):
        p = _point("LLVM", build_stream(1 << 22), a64fx_machine, threads=12)
        assert p.memory_bound
        assert p.arithmetic_intensity < 0.5

    def test_tiled_gemm_is_compute_bound(self, a64fx_machine):
        p = _point("LLVM+Polly", build_gemm(1024), a64fx_machine, threads=1)
        assert not p.memory_bound
        assert p.arithmetic_intensity > machine_balance(a64fx_machine, cores=1)

    def test_interchange_raises_effective_ai(self, a64fx_machine):
        # Same kernel: FJtrad's strided order wastes bandwidth at the L2
        # boundary, LLVM's interchanged order has identical memory AI but
        # far higher modelled throughput.
        fj = _point("FJtrad", build_gemm(1200), a64fx_machine)
        llvm = _point("LLVM", build_gemm(1200), a64fx_machine)
        assert llvm.modelled_flops > 3 * fj.modelled_flops

    def test_model_never_exceeds_roof_significantly(self, a64fx_machine):
        for variant in ("FJtrad", "LLVM", "GNU"):
            for kernel in (build_stream(1 << 22), build_gemm(256)):
                p = _point(variant, kernel, a64fx_machine, threads=12)
                assert p.modelled_flops <= p.attainable_flops * 1.3

    def test_roofline_efficiency_bounded(self, a64fx_machine):
        p = _point("LLVM", build_stream(1 << 22), a64fx_machine, threads=12)
        assert 0.0 < p.roofline_efficiency <= 1.0

    def test_table_renders(self, a64fx_machine):
        pts = [
            _point("LLVM", build_stream(1 << 22), a64fx_machine, threads=12),
            _point("LLVM", build_gemm(512), a64fx_machine),
        ]
        text = roofline_table(pts, a64fx_machine)
        assert "balance" in text and "AI (F/B)" in text
        assert len(text.splitlines()) == 4
