"""Tests for the analytic traffic model, including cross-validation
against the trace-based reference simulator."""

import pytest

from repro.compilers.base import CodegenNestInfo
from repro.ir import KernelBuilder, Language, read, update, write
from repro.machine import CacheLevel, Machine, SCALAR
from repro.machine.core import CoreModel
from repro.machine.memory import MemorySystem
from repro.machine.topology import Topology
from repro.perf.trace import trace_traffic
from repro.perf.traffic import nest_traffic
from repro.units import KiB, gb_per_s, ghz
from tests.conftest import build_gemm, build_stream


def tiny_machine(l1_kib=4, l2_kib=64, line=64):
    """A shrunken machine so small traced kernels exercise capacity."""
    core = CoreModel("t", ghz(2.0), 2, 512, 2, 2, 1, 40, 50, 60, 10, 0.6)
    l1 = CacheLevel("L1d", l1_kib * KiB, line, 4, 4, 128, 1)
    l2 = CacheLevel("L2", l2_kib * KiB, line, 8, 30, 64, 4)
    mem = MemorySystem("mem", gb_per_s(100), 0.8, 100e-9)
    topo = Topology("t", 1, 4)
    return Machine("tiny", core, (l1, l2), mem, topo, (SCALAR,))


def _traffic(kernel, machine, **info_kwargs):
    info = CodegenNestInfo(nest=kernel.nests[0], **info_kwargs)
    return nest_traffic(info, machine)


class TestStreamTraffic:
    def test_stream_memory_traffic_is_compulsory(self, a64fx_machine):
        n = 1 << 20
        kernel = build_stream(n)
        report = _traffic(kernel, a64fx_machine, streaming_stores=True)
        mem = report.boundaries[-1]
        # reads: b and c arrays; write: a
        assert mem.read_bytes == pytest.approx(2 * n * 8, rel=0.05)
        assert mem.write_bytes == pytest.approx(n * 8, rel=0.05)

    def test_write_allocate_adds_read_traffic(self, a64fx_machine):
        n = 1 << 20
        kernel = build_stream(n)
        with_ws = _traffic(kernel, a64fx_machine, streaming_stores=False)
        without = _traffic(kernel, a64fx_machine, streaming_stores=True)
        assert with_ws.boundaries[-1].read_bytes > without.boundaries[-1].read_bytes

    def test_cache_resident_kernel_no_memory_traffic_refetch(self, a64fx_machine):
        kernel = build_stream(64)  # 1.5 KiB total: L1-resident
        report = _traffic(kernel, a64fx_machine, streaming_stores=True)
        assert report.memory_bytes <= 3 * 64 * 8 * 1.1  # compulsory only


class TestGemmTraffic:
    def test_untiled_ijk_refetches_b(self, a64fx_machine):
        n = 1200  # B is 11.5 MB: beyond L2
        kernel = build_gemm(n)
        report = _traffic(kernel, a64fx_machine)
        # B refetched ~n times at line granularity
        assert report.memory_bytes > n * n * 8 * 10

    def test_tiling_cuts_memory_traffic(self, a64fx_machine):
        n = 1200
        kernel = build_gemm(n)
        untiled = _traffic(kernel, a64fx_machine)
        tiled = _traffic(kernel, a64fx_machine, tile_working_set=4 * 1024 * 1024)
        assert tiled.memory_bytes < untiled.memory_bytes / 20

    def test_interchange_cuts_line_amplification(self, a64fx_machine):
        # Untiled, both orders stream B from memory once per i; the
        # strided order additionally amplifies the L1<->L2 boundary by
        # the line/element ratio (256/8 = 32x on A64FX).
        n = 1200
        kernel = build_gemm(n)
        bad = _traffic(kernel, a64fx_machine)
        good_nest = kernel.nests[0].permuted(("i", "k", "j"))
        good = nest_traffic(CodegenNestInfo(nest=good_nest), a64fx_machine)
        bad_l2 = bad.boundaries[0].total_bytes
        good_l2 = good.boundaries[0].total_bytes
        assert good_l2 < bad_l2 / 10
        assert good.memory_bytes == pytest.approx(bad.memory_bytes, rel=0.2)

    def test_shared_cache_pressure_increases_traffic(self, a64fx_machine):
        n = 700  # B ~3.9MB: fits L2 alone, not when shared by 12 cores
        kernel = build_gemm(n)
        alone = nest_traffic(CodegenNestInfo(nest=kernel.nests[0]), a64fx_machine, 1)
        shared = nest_traffic(CodegenNestInfo(nest=kernel.nests[0]), a64fx_machine, 12)
        assert shared.memory_bytes > alone.memory_bytes

    def test_eliminated_nest_zero_traffic(self, a64fx_machine):
        kernel = build_gemm(128)
        info = CodegenNestInfo(nest=kernel.nests[0], eliminated=True)
        assert nest_traffic(info, a64fx_machine).memory_bytes == 0


class TestLatencyExposure:
    def test_indirect_marks_latency_fraction(self, a64fx_machine):
        b = KernelBuilder("g", Language.C)
        n = 1 << 20
        b.array("x", (n,))
        b.array("y", (n,))
        b.nest([("i", n)], [b.stmt(write("y", "i"), read("x", "i", indirect=True), fadd=1)])
        report = _traffic(b.build(), a64fx_machine)
        assert report.boundaries[-1].latency_exposed_fraction > 0.5

    def test_contiguous_not_latency_exposed(self, a64fx_machine):
        report = _traffic(build_stream(1 << 20), a64fx_machine)
        assert report.boundaries[-1].latency_exposed_fraction == 0.0


class TestCrossValidationAgainstTrace:
    """The analytic model must agree with the reference LRU simulation
    on small kernels (within the layer-condition approximation)."""

    def _compare(self, kernel, machine, rel=0.5):
        nest = kernel.nests[0]
        analytic = nest_traffic(CodegenNestInfo(nest=nest, streaming_stores=False), machine)
        traced = trace_traffic(nest, machine.cache_levels)
        a_mem = analytic.memory_bytes
        t_mem = traced.memory_bytes
        assert a_mem == pytest.approx(t_mem, rel=rel), (a_mem, t_mem)

    def test_stream_matches(self):
        m = tiny_machine()
        self._compare(build_stream(1 << 14), m, rel=0.4)

    def test_small_gemm_matches(self):
        m = tiny_machine(l1_kib=4, l2_kib=32)
        # 96x96 doubles = 72 KiB per matrix: beyond L2 -> refetch regime
        self._compare(build_gemm(96), m, rel=0.6)

    def test_l2_resident_gemm_matches(self):
        m = tiny_machine(l1_kib=4, l2_kib=512)
        # 48x48: all three matrices fit L2 easily -> compulsory regime
        self._compare(build_gemm(48), m, rel=0.6)

    def test_trace_refuses_huge_nests(self):
        from repro.perf.trace import iterate_addresses

        with pytest.raises(ValueError):
            list(iterate_addresses(build_gemm(512).nests[0]))
