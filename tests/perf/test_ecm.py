"""Tests for the ECM-style compute/transfer cost model."""

import pytest

from repro.compilers import compile_kernel
from repro.compilers.base import CodegenNestInfo
from repro.machine import SCALAR, SVE512
from repro.perf.ecm import cycles_per_iteration, nest_time
from tests.conftest import build_gemm, build_stream


def _compiled_info(variant, kernel, machine):
    ck = compile_kernel(variant, kernel, machine)
    assert ck.ok
    return ck.nest_infos[0]


class TestCyclesPerIteration:
    def test_vectorization_speeds_up_compute(self, a64fx_machine, stream_kernel):
        vec = _compiled_info("LLVM", stream_kernel, a64fx_machine)
        scalar = CodegenNestInfo(nest=stream_kernel.nests[0])
        assert cycles_per_iteration(vec, a64fx_machine) < cycles_per_iteration(
            scalar, a64fx_machine
        )

    def test_lanes_scale_throughput(self, a64fx_machine, stream_kernel):
        nest = stream_kernel.nests[0]
        wide = CodegenNestInfo(nest=nest, vectorized=True, vector_isa=SVE512, vec_lanes=8)
        narrow = CodegenNestInfo(nest=nest, vectorized=True, vector_isa=SVE512, vec_lanes=2)
        assert cycles_per_iteration(wide, a64fx_machine) < cycles_per_iteration(
            narrow, a64fx_machine
        )

    def test_scalar_quality_matters_only_unvectorized(self, a64fx_machine, stream_kernel):
        nest = stream_kernel.nests[0]
        good = CodegenNestInfo(nest=nest, scalar_quality=1.0)
        bad = CodegenNestInfo(nest=nest, scalar_quality=0.5)
        assert cycles_per_iteration(bad, a64fx_machine) > 1.5 * cycles_per_iteration(
            good, a64fx_machine
        )
        # vectorized code is insensitive to the scalar-quality knob
        good_v = CodegenNestInfo(nest=nest, vectorized=True, vector_isa=SVE512, vec_lanes=8)
        bad_v = CodegenNestInfo(
            nest=nest, vectorized=True, vector_isa=SVE512, vec_lanes=8, scalar_quality=0.5
        )
        assert cycles_per_iteration(bad_v, a64fx_machine) == pytest.approx(
            cycles_per_iteration(good_v, a64fx_machine)
        )

    def test_unrolling_helps_scalar_code(self, a64fx_machine, stream_kernel):
        nest = stream_kernel.nests[0]
        rolled = CodegenNestInfo(nest=nest, unroll_factor=1)
        unrolled = CodegenNestInfo(nest=nest, unroll_factor=8)
        assert cycles_per_iteration(unrolled, a64fx_machine) < cycles_per_iteration(
            rolled, a64fx_machine
        )

    def test_math_library_quality_scales_fspecial(self, a64fx_machine):
        from repro.suites.kernels_common import transcendental_map

        nest = transcendental_map("t", 4096).nests[0]
        fast = CodegenNestInfo(nest=nest, math_library_quality=1.0)
        slow = CodegenNestInfo(nest=nest, math_library_quality=0.5)
        assert cycles_per_iteration(slow, a64fx_machine) > 1.3 * cycles_per_iteration(
            fast, a64fx_machine
        )

    def test_xeon_ooo_beats_a64fx_scalar(self, a64fx_machine, xeon_machine, gemm_kernel):
        info = CodegenNestInfo(nest=gemm_kernel.nests[0])
        a = cycles_per_iteration(info, a64fx_machine)
        x = cycles_per_iteration(info, xeon_machine)
        assert x < a  # deeper OoO window -> fewer cycles per scalar iter


class TestNestTime:
    def test_threads_cut_compute_time(self, a64fx_machine, stream_kernel):
        info = _compiled_info("LLVM", stream_kernel, a64fx_machine)
        t1 = nest_time(info, a64fx_machine, threads=1)
        t12 = nest_time(info, a64fx_machine, threads=12, active_cores_per_domain=12)
        assert t12.total_s < t1.total_s

    def test_memory_bound_saturates(self, a64fx_machine):
        info = _compiled_info("LLVM", build_stream(1 << 26), a64fx_machine)
        t6 = nest_time(info, a64fx_machine, threads=6, active_cores_per_domain=6)
        t12 = nest_time(info, a64fx_machine, threads=12, active_cores_per_domain=12)
        # near-saturated: doubling threads gains little
        assert t12.total_s > 0.6 * t6.total_s
        assert t12.bound == "memory"

    def test_work_fraction_scales(self, a64fx_machine, stream_kernel):
        info = _compiled_info("LLVM", stream_kernel, a64fx_machine)
        full = nest_time(info, a64fx_machine)
        half = nest_time(info, a64fx_machine, work_fraction=0.5)
        assert half.total_s == pytest.approx(full.total_s / 2, rel=0.01)

    def test_numa_penalty_inflates_memory_path(self, a64fx_machine):
        info = _compiled_info("LLVM", build_stream(1 << 26), a64fx_machine)
        base = nest_time(info, a64fx_machine, threads=12, domains=1)
        pen = nest_time(info, a64fx_machine, threads=12, domains=1, numa_penalty=1.6)
        assert pen.memory_s == pytest.approx(1.6 * base.memory_s, rel=0.01)

    def test_eliminated_nest_is_free(self, a64fx_machine, stream_kernel):
        info = CodegenNestInfo(nest=stream_kernel.nests[0], eliminated=True)
        assert nest_time(info, a64fx_machine).total_s == 0.0

    def test_runtime_checks_inflate(self, a64fx_machine, stream_kernel):
        nest = stream_kernel.nests[0]
        clean = CodegenNestInfo(nest=nest)
        checked = CodegenNestInfo(nest=nest, runtime_check_overhead=0.10)
        assert nest_time(checked, a64fx_machine).total_s == pytest.approx(
            1.10 * nest_time(clean, a64fx_machine).total_s, rel=0.01
        )

    def test_latency_serialized_dominates(self, a64fx_machine):
        from repro.suites.kernels_common import pointer_chase

        kernel = pointer_chase("pc", 1 << 20)
        info = _compiled_info("FJtrad", kernel, a64fx_machine)
        t = nest_time(info, a64fx_machine)
        # ~1M serialized misses at ~100ns each: order 0.1 s
        assert t.total_s > 0.02
        assert t.bound == "memory"

    def test_memory_schedule_quality_scales_bandwidth(self, a64fx_machine):
        nest = build_stream(1 << 26).nests[0]
        kwargs = dict(threads=12, active_cores_per_domain=12)
        good = CodegenNestInfo(nest=nest, memory_schedule_quality=1.0)
        bad = CodegenNestInfo(nest=nest, memory_schedule_quality=0.5)
        assert nest_time(bad, a64fx_machine, **kwargs).total_s == pytest.approx(
            2 * nest_time(good, a64fx_machine, **kwargs).total_s, rel=0.05
        )

    def test_bound_classification(self, a64fx_machine):
        mem = _compiled_info("LLVM", build_stream(1 << 26), a64fx_machine)
        assert nest_time(mem, a64fx_machine).bound == "memory"
        from repro.suites.kernels_common import divsqrt_physics

        comp = _compiled_info("LLVM", divsqrt_physics("d", 4096, parallel=False), a64fx_machine)
        assert nest_time(comp, a64fx_machine).bound == "compute"


def _pure_gather(n=1 << 20):
    """y[i] = x[idx[i]] — a TLB-hostile random-gather stream."""
    from repro.ir import KernelBuilder, Language, read, write

    b = KernelBuilder("gather", Language.C)
    b.array("x", (n,))
    b.array("y", (n,))
    b.nest([("i", n)], [b.stmt(write("y", "i"), read("x", "i", indirect=True))])
    return b.build().nests[0]


class TestLargePages:
    def test_tlb_penalty_on_small_page_machines(self, xeon_machine):
        """Without huge pages, scattered streams pay page-walk latency;
        the effect is large on 4 KiB-page machines and marginal on
        A64FX's 64 KiB base pages (why Fujitsu links -Klargepage)."""
        nest = _pure_gather()
        t_lp = nest_time(CodegenNestInfo(nest=nest, large_pages=True), xeon_machine).total_s
        t_np = nest_time(CodegenNestInfo(nest=nest, large_pages=False), xeon_machine).total_s
        assert t_np > t_lp * 1.2

    def test_a64fx_barely_cares(self, a64fx_machine):
        nest = _pure_gather()
        t_lp = nest_time(CodegenNestInfo(nest=nest, large_pages=True), a64fx_machine).total_s
        t_np = nest_time(CodegenNestInfo(nest=nest, large_pages=False), a64fx_machine).total_s
        assert t_lp <= t_np <= t_lp * 1.1
