"""Tests for the energy-to-solution extension."""

import pytest

from repro.errors import MachineConfigError
from repro.machine import Placement, a64fx
from repro.perf.energy import POWER_MODELS, PowerModel, benchmark_energy, power_model_for
from repro.suites import get_benchmark


class TestPowerModel:
    def test_all_machines_covered(self):
        assert set(POWER_MODELS) >= {"A64FX", "Xeon", "ThunderX2"}

    def test_negative_rejected(self):
        with pytest.raises(MachineConfigError):
            PowerModel("x", -1, 1, 1)

    def test_unknown_machine_rejected(self):
        from repro.machine import CacheLevel, Machine, SCALAR
        from repro.machine.core import CoreModel
        from repro.machine.memory import MemorySystem
        from repro.machine.topology import Topology
        from repro.units import KiB, gb_per_s, ghz

        m = Machine(
            "Mystery",
            CoreModel("c", ghz(1), 1, 128, 1, 1, 1, 10, 10, 10, 10, 0.5),
            (CacheLevel("L1", 32 * KiB, 64, 4, 4, 64),),
            MemorySystem("m", gb_per_s(10), 0.8, 1e-7),
            Topology("t", 1, 1),
            (SCALAR,),
        )
        with pytest.raises(MachineConfigError):
            power_model_for(m)


class TestBenchmarkEnergy:
    def test_hpl_near_green500(self, a64fx_machine):
        """Fugaku's Green500 submission: ~15 GF/W on HPL."""
        bench = get_benchmark("top500.hpl")
        report = benchmark_energy(bench, "FJtrad", a64fx_machine, Placement(4, 12))
        assert 10.0 <= report.gflops_per_w <= 22.0
        assert 120.0 <= report.avg_power_w <= 300.0

    def test_memory_bound_burns_bandwidth_power(self, a64fx_machine):
        bench = get_benchmark("top500.babelstream")
        report = benchmark_energy(bench, "LLVM", a64fx_machine, Placement(1, 48))
        # streaming at ~800 GB/s: the bandwidth term is visible
        assert report.avg_power_w > 150.0
        assert report.gflops_per_w < 5.0

    def test_faster_compiler_saves_energy(self, a64fx_machine):
        """The Green500 subtext: the best compiler cuts joules too."""
        bench = get_benchmark("polybench.2mm")
        p = Placement(1, 1)
        fj = benchmark_energy(bench, "FJtrad", a64fx_machine, p)
        llvm = benchmark_energy(bench, "LLVM", a64fx_machine, p)
        assert llvm.energy_j < fj.energy_j / 3

    def test_failed_build_infinite_energy(self, a64fx_machine):
        bench = get_benchmark("micro.k22")
        report = benchmark_energy(bench, "FJclang", a64fx_machine, Placement(1, 12))
        assert report.energy_j == float("inf")
        assert report.gflops_per_w == 0.0
