"""Property-based invariants of the performance models.

Random small kernels are generated with hypothesis, and physical
invariants are asserted: traffic is non-negative and no smaller than
compulsory, bigger caches never increase traffic, more threads never
slow compute, tiling never adds memory traffic, and the ECM total is
never below its slowest component.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compilers.base import CodegenNestInfo
from repro.ir import AccessKind, KernelBuilder, Language
from repro.ir.builder import AccessSpec
from repro.machine import CacheLevel, Machine, SCALAR
from repro.machine.core import CoreModel
from repro.machine.memory import MemorySystem
from repro.machine.topology import Topology
from repro.perf.ecm import nest_time
from repro.perf.traffic import nest_traffic
from repro.units import KiB, gb_per_s, ghz


def machine_with_l1(l1_kib: int) -> Machine:
    core = CoreModel("p", ghz(2.0), 2, 512, 2, 2, 1, 40, 50, 60, 10, 0.6)
    l1 = CacheLevel("L1d", l1_kib * KiB, 64, 4, 4, 128, 1)
    l2 = CacheLevel("L2", 4096 * KiB, 64, 8, 30, 64, 4)
    mem = MemorySystem("mem", gb_per_s(100), 0.8, 100e-9)
    return Machine("p", core, (l1, l2), mem, Topology("t", 1, 4), (SCALAR,))


@st.composite
def random_affine_nest(draw):
    """A random 2-deep affine nest over up to three arrays."""
    n = draw(st.sampled_from([16, 32, 64]))
    m = draw(st.sampled_from([16, 32]))
    b = KernelBuilder("prop", Language.C)
    b.array("A", (n, m))
    b.array("B", (n, m))
    b.array("v", (max(n, m),))
    specs = []
    n_accesses = draw(st.integers(1, 4))
    for _ in range(n_accesses):
        arr = draw(st.sampled_from(["A", "B", "v"]))
        kind = draw(st.sampled_from([AccessKind.READ, AccessKind.WRITE, AccessKind.UPDATE]))
        if arr == "v":
            idx = (draw(st.sampled_from(["i", "j"])),)
        else:
            idx = (
                draw(st.sampled_from(["i", "i"])),
                draw(st.sampled_from(["j", "j"])),
            )
        specs.append(AccessSpec(arr, idx, kind))
    stmt = b.stmt(*specs, fadd=draw(st.integers(0, 4)), iops=draw(st.integers(0, 2)))
    return b.nest([("i", n), ("j", m)], [stmt])


class TestTrafficInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_affine_nest(), st.sampled_from([2, 8, 32]))
    def test_volumes_nonnegative_and_fractions_bounded(self, nest, l1_kib):
        machine = machine_with_l1(l1_kib)
        report = nest_traffic(CodegenNestInfo(nest=nest), machine)
        for b in report.boundaries:
            assert b.read_bytes >= 0 and b.write_bytes >= 0
            assert 0.0 <= b.latency_exposed_fraction <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(random_affine_nest())
    def test_bigger_l1_never_increases_l2_traffic(self, nest):
        small = nest_traffic(CodegenNestInfo(nest=nest), machine_with_l1(2))
        big = nest_traffic(CodegenNestInfo(nest=nest), machine_with_l1(64))
        assert big.boundaries[0].total_bytes <= small.boundaries[0].total_bytes * 1.001

    @settings(max_examples=40, deadline=None)
    @given(random_affine_nest())
    def test_tiling_never_increases_memory_traffic(self, nest):
        machine = machine_with_l1(8)
        plain = nest_traffic(CodegenNestInfo(nest=nest), machine)
        tiled = nest_traffic(
            CodegenNestInfo(nest=nest, tile_working_set=64 * KiB), machine
        )
        assert tiled.memory_bytes <= plain.memory_bytes * 1.001

    @settings(max_examples=40, deadline=None)
    @given(random_affine_nest())
    def test_streaming_stores_never_add_traffic(self, nest):
        machine = machine_with_l1(8)
        with_alloc = nest_traffic(
            CodegenNestInfo(nest=nest, streaming_stores=False), machine
        )
        nt = nest_traffic(CodegenNestInfo(nest=nest, streaming_stores=True), machine)
        assert nt.memory_bytes <= with_alloc.memory_bytes * 1.001


class TestEcmInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_affine_nest(), st.sampled_from([1, 2, 4]))
    def test_time_positive_and_total_covers_components(self, nest, threads):
        machine = machine_with_l1(8)
        t = nest_time(CodegenNestInfo(nest=nest), machine, threads=threads)
        assert t.total_s > 0
        assert t.total_s >= t.compute_s * 0.999
        assert t.total_s >= max(t.transfer_s) * 0.999

    @settings(max_examples=30, deadline=None)
    @given(random_affine_nest())
    def test_more_threads_never_slow_compute(self, nest):
        machine = machine_with_l1(8)
        t1 = nest_time(CodegenNestInfo(nest=nest), machine, threads=1)
        t4 = nest_time(CodegenNestInfo(nest=nest), machine, threads=4, active_cores_per_domain=4)
        assert t4.compute_s <= t1.compute_s * 1.001

    @settings(max_examples=30, deadline=None)
    @given(random_affine_nest(), st.floats(0.1, 1.0))
    def test_work_fraction_linear_in_compute(self, nest, frac):
        machine = machine_with_l1(8)
        full = nest_time(CodegenNestInfo(nest=nest), machine)
        part = nest_time(CodegenNestInfo(nest=nest), machine, work_fraction=frac)
        assert part.compute_s == pytest.approx(full.compute_s * frac, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(random_affine_nest(), st.floats(1.0, 3.0))
    def test_numa_penalty_monotone(self, nest, penalty):
        machine = machine_with_l1(8)
        base = nest_time(CodegenNestInfo(nest=nest), machine)
        pen = nest_time(CodegenNestInfo(nest=nest), machine, numa_penalty=penalty)
        assert pen.total_s >= base.total_s * 0.999
