"""Tests for the batched grid evaluator (repro.perf.batch).

The scalar :func:`repro.perf.cost.benchmark_model` is the reference
oracle: the differential tests sweep the full default campaign grid and
assert the batched path reproduces every scalar ``ModelResult``
bit-identically, failed-build ``inf`` cells included.  Property tests
pin the feature-matrix extractor to the scalar traffic/ECM models on
degenerate (zero-trip) and triangular-approximated nests.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GridSpec, evaluate_grid
from repro.compilers.base import CodegenNestInfo
from repro.compilers.registry import STUDY_VARIANTS
from repro.errors import HarnessError
from repro.harness import placement_candidates
from repro.ir import AccessKind, KernelBuilder, Language
from repro.ir.builder import AccessSpec
from repro.machine import CacheLevel, Machine, SCALAR, a64fx
from repro.machine.core import CoreModel
from repro.machine.memory import MemorySystem
from repro.machine.topology import Topology
from repro.perf import (
    CompilationCache,
    benchmark_model,
    evaluate_placements,
    nest_features,
)
from repro.perf.ecm import cycles_per_iteration
from repro.perf.traffic import nest_traffic
from repro.suites import all_benchmarks, micro_suite
from repro.units import KiB, gb_per_s, ghz


class TestDifferentialFullGrid:
    def test_full_default_grid_bit_identical(self, a64fx_machine):
        """Every (benchmark, variant, placement) cell of the default
        campaign grid: batched == scalar, exactly."""
        cache = CompilationCache()
        cells = 0
        failed = 0
        for bench in all_benchmarks():
            placements = placement_candidates(bench, a64fx_machine)
            for variant in STUDY_VARIANTS:
                batched = evaluate_placements(
                    bench, variant, a64fx_machine, placements, cache=cache
                )
                assert len(batched) == len(placements)
                for placement, got in zip(placements, batched):
                    want = benchmark_model(
                        bench, variant, a64fx_machine, placement, cache=cache
                    )
                    assert got == want, (bench.full_name, variant, placement)
                    cells += 1
                    if not want.valid:
                        failed += 1
                        assert got.time_s == float("inf")
        assert cells > 4000
        # Figure 2's compile/runtime-failure cells must be represented.
        assert failed > 0

    def test_failed_build_cell_is_inf(self, a64fx_machine):
        # micro.k22 is a compile-error cell under FJclang (Figure 2).
        bench = micro_suite().get("k22")
        placements = placement_candidates(bench, a64fx_machine)
        results = evaluate_placements(bench, "FJclang", a64fx_machine, placements)
        for r in results:
            assert not r.valid
            assert r.time_s == float("inf")

    def test_results_are_plain_floats(self, a64fx_machine):
        # Record times are json-serialized downstream: no numpy scalar
        # types may leak out of the batched path.
        bench = micro_suite().get("k04")
        placements = placement_candidates(bench, a64fx_machine)
        assert len(placements) > 1  # exercises the vectorized branch
        for r in evaluate_placements(bench, "GNU", a64fx_machine, placements):
            assert type(r.time_s) is float
            assert type(r.compute_s) is float
            assert type(r.memory_s) is float
            assert type(r.comm_s) is float


class TestEvaluateGrid:
    def test_grid_matches_evaluate_placements(self, a64fx_machine):
        grid = evaluate_grid(
            GridSpec(suites=("top500",), variants=("GNU", "LLVM"))
        )
        assert grid.machine == "A64FX"
        assert len(grid.cells) == 6  # 3 benchmarks x 2 variants
        for cell in grid.cells:
            bench = next(
                b for b in all_benchmarks() if b.full_name == cell.benchmark
            )
            want = evaluate_placements(
                bench, cell.variant, a64fx_machine, cell.placements
            )
            assert cell.results == want

    def test_overrides_and_cell_lookup(self):
        grid = evaluate_grid(benchmarks=("polybench.gemm",), variants=("GNU",))
        cell = grid.cell("polybench.gemm", "GNU")
        assert cell.best.valid
        assert cell.best.time_s == min(r.time_s for r in cell.results)

    def test_unknown_machine_rejected(self):
        with pytest.raises(HarnessError):
            evaluate_grid(GridSpec(machine="cray-1"))

    def test_spec_with_(self):
        spec = GridSpec().with_(variants=("GNU",))
        assert spec.variants == ("GNU",)


def _machine(l1_kib: int = 32) -> Machine:
    core = CoreModel("p", ghz(2.0), 2, 512, 2, 2, 1, 40, 50, 60, 10, 0.6)
    l1 = CacheLevel("L1d", l1_kib * KiB, 64, 4, 4, 128, 1)
    l2 = CacheLevel("L2", 4096 * KiB, 64, 8, 30, 64, 4)
    mem = MemorySystem("mem", gb_per_s(100), 0.8, 100e-9)
    return Machine("p", core, (l1, l2), mem, Topology("t", 1, 4), (SCALAR,))


@st.composite
def triangularish_nest(draw):
    """A 2-deep nest with triangular-style bounds: a nonzero lower
    bound and/or a halved inner trip (the polybench_la approximation),
    possibly zero-trip."""
    n = draw(st.sampled_from([0, 1, 16, 48]))
    lo = draw(st.integers(0, 8))
    hi = lo + draw(st.sampled_from([0, n // 2 if n else 0, n]))
    b = KernelBuilder("tri", Language.C)
    b.array("L", (64, 64))
    b.array("x", (64,))
    specs = [
        AccessSpec("L", ("i", "j"), AccessKind.READ),
        AccessSpec(
            "x",
            (draw(st.sampled_from(["i", "j"])),),
            draw(st.sampled_from([AccessKind.READ, AccessKind.UPDATE])),
        ),
    ]
    stmt = b.stmt(*specs, fadd=draw(st.integers(0, 3)), fmul=draw(st.integers(0, 2)))
    return b.nest([("i", n), ("j", lo, hi)], [stmt])


class TestFeatureMatrixProperties:
    @settings(max_examples=60, deadline=None)
    @given(triangularish_nest(), st.sampled_from([1, 3, 12]))
    def test_traffic_matches_scalar_oracle(self, nest, acpd):
        machine = _machine()
        info = CodegenNestInfo(nest=nest)
        features = nest_features(info, machine)
        assert features.traffic_for(acpd) == nest_traffic(info, machine, acpd)

    @settings(max_examples=40, deadline=None)
    @given(triangularish_nest())
    def test_cpi_matches_scalar_oracle(self, nest):
        machine = _machine()
        info = CodegenNestInfo(nest=nest)
        features = nest_features(info, machine)
        if features.empty:
            assert nest.iterations == 0
        else:
            assert features.cpi == cycles_per_iteration(info, machine)
            assert math.isfinite(features.cpi) and features.cpi > 0

    def test_zero_trip_nest_is_empty(self):
        machine = _machine()
        b = KernelBuilder("z", Language.C)
        b.array("A", (8, 8))
        stmt = b.stmt(AccessSpec("A", ("i", "j"), AccessKind.READ), fadd=1)
        nest = b.nest([("i", 0), ("j", 8)], [stmt])
        info = CodegenNestInfo(nest=nest)
        features = nest_features(info, machine)
        assert features.empty
        report = features.traffic_for(1)
        assert report == nest_traffic(info, machine, 1)
        assert all(bd.total_bytes == 0.0 for bd in report.boundaries)

    def test_features_memoized_by_identity(self):
        machine = a64fx()
        b = KernelBuilder("memo", Language.C)
        b.array("A", (16, 16))
        stmt = b.stmt(AccessSpec("A", ("i", "j"), AccessKind.READ), fadd=1)
        nest = b.nest([("i", 16), ("j", 16)], [stmt])
        info = CodegenNestInfo(nest=nest)
        assert nest_features(info, machine) is nest_features(info, machine)


class TestGridCellRanked:
    def test_ranked_fastest_first_ties_keep_order(self, a64fx_machine):
        grid = evaluate_grid(benchmarks=("ecp.nekbone",), variants=("GNU",))
        cell = grid.cell("ecp.nekbone", "GNU")
        ranked = cell.ranked
        assert len(ranked) == len(cell.results)
        times = [r.time_s for r in ranked]
        assert times == sorted(times)
        assert ranked[0] == cell.best
        # a permutation, nothing dropped
        assert sorted(ranked, key=id) != [] and set(
            id(r) for r in ranked
        ) == set(id(r) for r in cell.results)
