"""Tests for the benchmark suites: counts, structure, paper metadata."""

import pytest

from repro.errors import SuiteError
from repro.ir import Feature, Language
from repro.ir.validate import validate_kernel
from repro.suites import (
    EXPECTED_TOTAL,
    ParallelKind,
    ScalingKind,
    all_benchmarks,
    all_suites,
    ecp_suite,
    fiber_suite,
    get_benchmark,
    get_suite,
    micro_suite,
    polybench_suite,
    spec_cpu_suite,
    spec_omp_suite,
    top500_suite,
)


class TestCounts:
    """Section 2.2's inventory: 'over 100 different kernels ... from
    seven test suites', totalling 108 benchmarks."""

    def test_total_is_108(self):
        assert len(all_benchmarks()) == EXPECTED_TOTAL == 108

    @pytest.mark.parametrize(
        "suite_fn,count",
        [
            (micro_suite, 22),
            (polybench_suite, 30),
            (top500_suite, 3),
            (ecp_suite, 11),
            (fiber_suite, 8),
            (spec_cpu_suite, 20),
            (spec_omp_suite, 14),
        ],
    )
    def test_suite_sizes(self, suite_fn, count):
        assert len(suite_fn()) == count

    def test_seven_suites(self):
        assert len(all_suites()) == 7

    def test_unique_full_names(self):
        names = [b.full_name for b in all_benchmarks()]
        assert len(set(names)) == len(names)


class TestStructuralValidity:
    def test_every_kernel_validates(self):
        for b in all_benchmarks():
            for k in b.kernels():
                assert validate_kernel(k) == [], (b.full_name, k.name)

    def test_every_benchmark_has_work(self):
        for b in all_benchmarks():
            assert b.units

    def test_registry_lookup(self):
        b = get_benchmark("polybench.mvt")
        assert b.suite == "polybench"
        with pytest.raises(SuiteError):
            get_benchmark("nope.nope")
        with pytest.raises(SuiteError):
            get_benchmark("malformed")
        with pytest.raises(SuiteError):
            get_suite("nope")


class TestMicroSuite:
    def test_primarily_fortran_except_five(self):
        # Sec. 2.2: "primarily written in Fortran (except five)"
        c_count = sum(1 for b in micro_suite().benchmarks if b.language is Language.C)
        assert c_count == 5

    def test_all_limited_to_one_cmg(self):
        for b in micro_suite().benchmarks:
            assert b.max_useful_threads == 12

    def test_fortran_kernels_vendor_tuned(self):
        for b in micro_suite().benchmarks:
            if b.language is Language.FORTRAN:
                assert any(
                    k.has_feature(Feature.VENDOR_TUNED) for k in b.kernels()
                ), b.name

    def test_names_k01_to_k22(self):
        names = sorted(b.name for b in micro_suite().benchmarks)
        assert names[0] == "k01" and names[-1] == "k22"


class TestPolybenchSuite:
    def test_all_serial_and_pinned(self):
        # Sec. 2.3: "PolyBench, whose tests are pinned to one core"
        for b in polybench_suite().benchmarks:
            assert b.parallel is ParallelKind.SERIAL
            assert b.pinned_single_core

    def test_all_c(self):
        for b in polybench_suite().benchmarks:
            assert b.language is Language.C

    def test_expected_kernels_present(self):
        names = {b.name for b in polybench_suite().benchmarks}
        for expected in ("2mm", "3mm", "mvt", "gemm", "floyd-warshall", "seidel-2d"):
            assert expected in names

    def test_time_stepped_kernels_weighted(self):
        adi = polybench_suite().get("adi")
        assert adi.units[0].invocations == 500


class TestTop500:
    def test_babelstream_noise_cv(self):
        # Sec. 2.4: BabelStream CV "up to 22%"
        assert top500_suite().get("babelstream").noise_cv == pytest.approx(0.22)

    def test_hpl_is_library_dominated(self, a64fx_machine):
        from repro.machine import Placement
        from repro.perf import benchmark_model

        hpl = top500_suite().get("hpl")
        r = benchmark_model(hpl, "FJtrad", a64fx_machine, Placement(4, 12))
        lib = sum(u.library_s for u in r.units)
        assert lib > 0.5 * r.time_s


class TestEcp:
    def test_weak_scaling_markers(self):
        # Sec. 2.4: "(exc.: weak-scaling MiniAMR & XSBench)"
        assert ecp_suite().get("miniamr").scaling is ScalingKind.WEAK
        assert ecp_suite().get("xsbench").scaling is ScalingKind.WEAK

    def test_swfft_pow2(self):
        # Sec. 2.4: "some codes prefer or require pow2 ranks (e.g., SWFFT)"
        assert ecp_suite().get("swfft").pow2_ranks

    def test_amg_low_noise(self):
        assert ecp_suite().get("amg").noise_cv <= 0.00114


class TestFiber:
    def test_mostly_fortran(self):
        langs = [b.language for b in fiber_suite().benchmarks]
        assert langs.count(Language.FORTRAN) >= 5

    def test_tuned_kernels_marked(self):
        nicam = fiber_suite().get("nicam")
        assert all(k.has_feature(Feature.VENDOR_TUNED) for k in nicam.kernels())

    def test_ffb_untuned(self):
        ffb = fiber_suite().get("ffb")
        assert not any(k.has_feature(Feature.VENDOR_TUNED) for k in ffb.kernels())


class TestSpec:
    def test_int_half_serial(self):
        # Sec. 2.2: "One half are single-threaded, integer-intensive"
        serial = [b for b in spec_cpu_suite().benchmarks if b.parallel is ParallelKind.SERIAL]
        assert len(serial) == 10

    def test_fp_half_openmp(self):
        omp = [b for b in spec_cpu_suite().benchmarks if b.parallel is ParallelKind.OPENMP]
        assert len(omp) == 10

    def test_imagick_thread_sweet_spot(self):
        # Sec. 2.4: "SPEC imagick's sweet spot is 8 threads"
        assert spec_cpu_suite().get("638.imagick_s").max_useful_threads == 8

    def test_omp_all_parallel(self):
        for b in spec_omp_suite().benchmarks:
            assert b.parallel is ParallelKind.OPENMP

    def test_kdtree_is_recursive_cxx(self):
        kdtree = spec_omp_suite().get("376.kdtree")
        assert kdtree.language is Language.CXX
        assert any(k.has_feature(Feature.RECURSIVE) for k in kdtree.kernels())

    def test_exchange2_is_fortran_integer(self):
        b = spec_cpu_suite().get("648.exchange2_s")
        assert b.language is Language.FORTRAN
        assert any(k.has_feature(Feature.INTEGER_DOMINANT) for k in b.kernels())


class TestWorkUnitValidation:
    def test_empty_unit_rejected(self):
        from repro.suites.base import WorkUnit

        with pytest.raises(SuiteError):
            WorkUnit()

    def test_nonpositive_invocations_rejected(self):
        from repro.suites.base import WorkUnit
        from tests.conftest import build_stream

        with pytest.raises(SuiteError):
            WorkUnit(kernel=build_stream(16), invocations=0)

    def test_pinned_requires_serial(self):
        from repro.suites.base import Benchmark, WorkUnit
        from tests.conftest import build_stream

        with pytest.raises(SuiteError):
            Benchmark(
                name="x",
                suite="s",
                language=Language.C,
                units=(WorkUnit(kernel=build_stream(16)),),
                parallel=ParallelKind.OPENMP,
                pinned_single_core=True,
            )
