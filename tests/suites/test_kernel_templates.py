"""Structural tests for the reusable kernel templates."""

import pytest

from repro.ir import (
    Feature,
    Language,
    Layout,
    StrideClass,
    is_scop,
    nest_access_patterns,
    validate_kernel,
)
from repro.suites import kernels_common as kc


ALL_TEMPLATES = [
    ("stream_copy", lambda: kc.stream_copy("t", 256)),
    ("stream_scale", lambda: kc.stream_scale("t", 256)),
    ("stream_add", lambda: kc.stream_add("t", 256)),
    ("stream_triad", lambda: kc.stream_triad("t", 256)),
    ("stream_dot", lambda: kc.stream_dot("t", 256)),
    ("jacobi2d", lambda: kc.jacobi2d("t", 32)),
    ("stencil3d7", lambda: kc.stencil3d7("t", 16)),
    ("stencil3d27", lambda: kc.stencil3d27("t", 16)),
    ("dense_matmul", lambda: kc.dense_matmul("t", 16, 16, 16)),
    ("int8_sdot_gemm", lambda: kc.int8_sdot_gemm("t", 48, 48, 64)),
    ("matvec", lambda: kc.matvec("t", 16, 16)),
    ("rank1_update", lambda: kc.rank1_update("t", 16)),
    ("spmv_csr", lambda: kc.spmv_csr("t", 64, 4)),
    ("particle_force", lambda: kc.particle_force("t", 64, 8)),
    ("table_lookup", lambda: kc.table_lookup("t", 64, 32)),
    ("pointer_chase", lambda: kc.pointer_chase("t", 64)),
    ("int_scan", lambda: kc.int_scan("t", 256)),
    ("graph_traversal", lambda: kc.graph_traversal("t", 64, 4)),
    ("transcendental_map", lambda: kc.transcendental_map("t", 256)),
    ("divsqrt_physics", lambda: kc.divsqrt_physics("t", 256)),
    ("tridiag_sweep", lambda: kc.tridiag_sweep("t", 16, 16)),
    ("seidel_sweep", lambda: kc.seidel_sweep("t", 16)),
    ("fft_stride_pass", lambda: kc.fft_stride_pass("t", 256, 8)),
    ("monte_carlo", lambda: kc.monte_carlo("t", 256)),
]


@pytest.mark.parametrize("name,factory", ALL_TEMPLATES, ids=[n for n, _ in ALL_TEMPLATES])
class TestEveryTemplate:
    def test_validates(self, name, factory):
        assert validate_kernel(factory()) == []

    def test_has_work(self, name, factory):
        kernel = factory()
        assert kernel.total_iterations > 0
        assert kernel.data_footprint_bytes > 0


class TestLayoutAwareness:
    """Templates must stream contiguously in both C and Fortran."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda lang: kc.jacobi2d("t", 32, lang),
            lambda lang: kc.stencil3d7("t", 16, lang),
            lambda lang: kc.stencil3d27("t", 16, lang),
            lambda lang: kc.tridiag_sweep("t", 16, 16, lang),
        ],
    )
    def test_innermost_contiguous_in_both_layouts(self, factory):
        for lang in (Language.C, Language.FORTRAN):
            kernel = factory(lang)
            for nest in kernel.nests:
                patterns = nest_access_patterns(nest)
                contiguous = sum(
                    1
                    for p in patterns
                    if p.stride_class in (StrideClass.CONTIGUOUS, StrideClass.INVARIANT)
                )
                assert contiguous / len(patterns) >= 0.5, (lang, nest.loop_vars)

    def test_fortran_arrays_col_major(self):
        kernel = kc.stencil3d7("t", 16, Language.FORTRAN)
        assert all(a.layout is Layout.COL_MAJOR for a in kernel.arrays)

    def test_fortran_parallel_loop_outermost(self):
        kernel = kc.stencil3d7("t", 16, Language.FORTRAN)
        assert kernel.nests[0].loops[0].parallel


class TestFeatureTags:
    def test_indirect_templates_tagged(self):
        assert Feature.INDIRECT in kc.spmv_csr("t", 64, 4).features
        assert Feature.INDIRECT in kc.particle_force("t", 64, 8).features

    def test_pointer_chase_tags(self):
        k = kc.pointer_chase("t", 64)
        assert Feature.POINTER_CHASING in k.features
        assert not is_scop(k)

    def test_int_scan_tags(self):
        k = kc.int_scan("t", 256)
        assert Feature.INTEGER_DOMINANT in k.features
        assert Feature.BRANCH_HEAVY in k.features

    def test_table_lookup_serial_vs_restructured(self):
        serial = kc.table_lookup("t", 64, 32, serial_search=True)
        vector = kc.table_lookup("t2", 64, 32, serial_search=False)
        assert Feature.POINTER_CHASING in serial.features
        assert Feature.POINTER_CHASING not in vector.features

    def test_streams_are_scops(self):
        assert is_scop(kc.stream_triad("t", 256))
        assert is_scop(kc.jacobi2d("t", 32))


class TestOpCounts:
    def test_triad_flops(self):
        # one FMA per element = 2 flops
        assert kc.stream_triad("t", 1000).total_flops() == 2000

    def test_matmul_flops(self):
        assert kc.dense_matmul("t", 8, 8, 8).total_flops() == 2 * 8**3

    def test_stencil27_is_compute_rich(self):
        k = kc.stencil3d27("t", 16)
        assert k.arithmetic_intensity_naive > kc.stream_triad("t2", 256).arithmetic_intensity_naive


class TestInt8SdotGemm:
    """The materialized tuner-winning INT8 GEMM configuration."""

    def test_integer_dominant_int8_arrays(self):
        from repro.ir import DType

        k = kc.int8_sdot_gemm("t", 48, 48, 64)
        assert Feature.INTEGER_DOMINANT in k.features
        arrays = {a.name: a for a in k.arrays}
        assert arrays["A"].dtype is DType.I8
        assert arrays["B"].dtype is DType.I8
        assert arrays["C"].dtype is DType.I32

    def test_tile_shapes_iteration_space(self):
        # 6x4 tile over 48x48: 8 row tiles x 12 column tiles; 2x-unrolled
        # 4-deep SDOT groups over k=64: 8 K iterations
        k = kc.int8_sdot_gemm("t", 48, 48, 64, mr=6, nr=4, unroll=2)
        nest = k.nests[0]
        assert [loop.upper for loop in nest.loops] == [8, 12, 8]
        assert nest.body[0].ops.iops == 6 * 4 * 2

    def test_iops_track_tile_and_unroll(self):
        small = kc.int8_sdot_gemm("a", 48, 48, 64, mr=2, nr=2, unroll=1)
        big = kc.int8_sdot_gemm("b", 48, 48, 64, mr=6, nr=4, unroll=2)
        assert big.nests[0].body[0].ops.iops == 12 * small.nests[0].body[0].ops.iops

    def test_compiles_on_a64fx(self):
        from repro.compilers import CompileStatus, compile_kernel
        from repro.machine import a64fx

        ck = compile_kernel("GNU", kc.int8_sdot_gemm("t", 48, 48, 64), a64fx())
        assert ck.status is CompileStatus.OK
