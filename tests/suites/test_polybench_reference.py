"""Tests tying the NumPy reference kernels to the IR model.

Three families:

* sanity of the references themselves (against numpy/scipy oracles);
* *legality ground truth*: loop orders the dependence analysis declares
  interchangeable produce identical numerics, and orders it rejects
  genuinely change results;
* flop-count consistency between the IR descriptions and the
  mathematics.
"""

import numpy as np
import pytest

from repro.ir import nest_dependences, permutation_legal
from repro.suites import polybench_reference as ref
from repro.suites.polybench_la import gemm as gemm_ir
from tests.conftest import build_gemm


class TestReferenceSanity:
    def test_gemm_matches_numpy(self):
        A, B = ref.init_array((6, 7)), ref.init_array((7, 8))
        C = ref.init_array((6, 8))
        out = ref.gemm(A, B, C, alpha=2.0, beta=0.5)
        np.testing.assert_allclose(out, 2.0 * A @ B + 0.5 * C)

    def test_two_mm_associativity(self):
        A, B, C = ref.init_array((4, 5)), ref.init_array((5, 6)), ref.init_array((6, 7))
        D = ref.init_array((4, 7))
        np.testing.assert_allclose(
            ref.two_mm(A, B, C, D), 1.5 * (A @ B @ C) + 1.2 * D, rtol=1e-12
        )

    def test_trisolv_solves(self):
        n = 12
        L = np.tril(ref.init_array((n, n))) + n * np.eye(n)
        b = ref.init_array((n,))
        x = ref.trisolv(L, b)
        np.testing.assert_allclose(L @ x, b, rtol=1e-10)

    def test_cholesky_reconstructs(self):
        n = 10
        M = ref.init_array((n, n))
        A = M @ M.T + n * np.eye(n)
        L = ref.cholesky(A)
        np.testing.assert_allclose(L @ L.T, A, rtol=1e-8)

    def test_lu_reconstructs(self):
        n = 8
        A = ref.init_array((n, n)) + n * np.eye(n)
        L, U = ref.lu(A)
        np.testing.assert_allclose(L @ U, A, rtol=1e-10)

    def test_gramschmidt_orthonormal(self):
        A = ref.init_array((12, 6))
        Q, R = ref.gramschmidt(A)
        np.testing.assert_allclose(Q.T @ Q, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(Q @ R, A, rtol=1e-10)

    def test_durbin_solves_toeplitz(self):
        n = 10
        r = np.linspace(0.1, 0.5, n)
        y = ref.durbin(r)
        T = np.array([[1.0 if i == j else r[abs(i - j) - 1] for j in range(n)] for i in range(n)])
        np.testing.assert_allclose(T @ y, -r, rtol=1e-8)

    def test_floyd_warshall_shortest_paths(self):
        import networkx as nx

        n = 12
        rng = np.random.default_rng(3)
        w = rng.uniform(1, 10, (n, n))
        np.fill_diagonal(w, 0)
        out = ref.floyd_warshall(w)
        g = nx.from_numpy_array(w, create_using=nx.DiGraph)
        lengths = dict(nx.all_pairs_dijkstra_path_length(g))
        for i in range(n):
            for j in range(n):
                assert out[i, j] == pytest.approx(lengths[i][j], rel=1e-9)

    def test_covariance_matches_numpy(self):
        data = ref.init_array((20, 5))
        np.testing.assert_allclose(ref.covariance(data), np.cov(data.T), rtol=1e-10)

    def test_correlation_matches_numpy(self):
        data = ref.init_array((30, 4))
        np.testing.assert_allclose(ref.correlation(data), np.corrcoef(data.T), rtol=1e-8)

    def test_atax_bicg_mvt_gesummv(self):
        A = ref.init_array((6, 8))
        x = ref.init_array((8,))
        np.testing.assert_allclose(ref.atax(A, x), A.T @ (A @ x))
        s, q = ref.bicg(A, ref.init_array((8,)), ref.init_array((6,)))
        assert s.shape == (8,) and q.shape == (6,)
        Sq = ref.init_array((5, 5))
        x1, x2 = ref.mvt(Sq, *(ref.init_array((5,)) for _ in range(4)))
        assert np.all(np.isfinite(x1)) and np.all(np.isfinite(x2))
        y = ref.gesummv(Sq, Sq, ref.init_array((5,)))
        assert y.shape == (5,)

    def test_stencils_finite_and_contracting(self):
        A, B = ref.init_array((16,)), ref.init_array((16,))
        a2, _ = ref.jacobi_1d(A, B, tsteps=3)
        assert np.all(np.isfinite(a2))
        A2, B2 = ref.init_array((10, 10)), ref.init_array((10, 10))
        a3, _ = ref.jacobi_2d(A2, B2, tsteps=2)
        assert np.all(np.isfinite(a3))
        ex, ey, hz = (ref.init_array((8, 9)) for _ in range(3))
        out = ref.fdtd_2d(ex, ey, hz, tsteps=2)
        assert all(np.all(np.isfinite(o)) for o in out)
        h1, _ = ref.heat_3d(ref.init_array((8, 8, 8)), ref.init_array((8, 8, 8)), 2)
        assert np.all(np.isfinite(h1))


class TestLegalityGroundTruth:
    """The dependence analysis' verdicts, checked numerically."""

    @pytest.mark.parametrize("order", ["ikj", "kij", "jik", "kji", "jki"])
    def test_gemm_interchange_legal_and_equivalent(self, order):
        # analysis verdict
        nest = build_gemm(8).nests[0]
        deps = nest_dependences(nest)
        assert permutation_legal(deps, ("i", "j", "k"), tuple(order))
        # numeric ground truth (exact: same additions per C element,
        # in the same k-order, for every legal permutation keeping k's
        # relative order per (i, j) — here all orders keep it)
        A, B = ref.init_array((8, 8)), ref.init_array((8, 8), seed=11)
        C = ref.init_array((8, 8), seed=13)
        base = ref.gemm_loops(A, B, C, order="ijk")
        other = ref.gemm_loops(A, B, C, order=order)
        np.testing.assert_allclose(other, base, rtol=1e-13)

    def test_seidel9_reorder_rejected_and_genuinely_different(self):
        # analysis verdict: interchanging the 9-point seidel sweep is
        # illegal (the A[i+1][j-1] diagonal carries a (<,>) dependence)
        from repro.suites.kernels_common import seidel_sweep

        nest = seidel_sweep("s", 10).nests[0]
        deps = nest_dependences(nest)
        assert not permutation_legal(
            deps, ("i", "j"), ("j", "i"), allow_reduction_reorder=False
        )
        # numeric ground truth: the reordered sweep computes different values
        A = ref.init_array((10, 10))
        row = ref.seidel_2d(A, row_major_order=True)
        col = ref.seidel_2d(A, row_major_order=False)
        assert not np.allclose(row, col)

    def test_seidel5_reorder_legal_and_equivalent(self):
        # Without the diagonals there is no (<,>) vector: the analysis
        # calls the interchange legal, and the numerics agree exactly.
        from repro.ir import KernelBuilder, Language, read, write

        b = KernelBuilder("seidel5", Language.C)
        b.array("A", (10, 10))
        nest = b.nest(
            [("i", 1, 9), ("j", 1, 9)],
            [
                b.stmt(
                    write("A", "i", "j"),
                    read("A", "i-1", "j"),
                    read("A", "i+1", "j"),
                    read("A", "i", "j-1"),
                    read("A", "i", "j+1"),
                    fadd=4,
                )
            ],
        )
        deps = nest_dependences(nest)
        assert permutation_legal(deps, ("i", "j"), ("j", "i"), allow_reduction_reorder=False)
        A = ref.init_array((10, 10))
        row = ref.seidel_2d(A, row_major_order=True, nine_point=False)
        col = ref.seidel_2d(A, row_major_order=False, nine_point=False)
        np.testing.assert_allclose(row, col, rtol=1e-14)

    def test_jacobi_is_order_insensitive(self):
        # two-array Jacobi has no loop-carried deps: any traversal order
        # gives identical results — consistent with the analysis.
        from repro.suites.kernels_common import jacobi2d
        from repro.ir import innermost_vectorization_legality

        nest = jacobi2d("j", 10, parallel=False).nests[0]
        assert innermost_vectorization_legality(nest).legal
        A, B = ref.init_array((10, 10)), ref.init_array((10, 10))
        a1, _ = ref.jacobi_2d(A, B, 1)
        # transpose-traversal equivalent: apply to transposed input
        a2t, _ = ref.jacobi_2d(A.T.copy(), B.T.copy(), 1)
        np.testing.assert_allclose(a1, a2t.T, rtol=1e-13)


class TestFlopConsistency:
    def test_gemm_ir_flops_match_formula(self):
        kernel = gemm_ir()
        ni, nj, nk = 1000, 1100, 1200
        assert kernel.total_flops() == pytest.approx(ref.gemm_flops(ni, nj, nk), rel=1e-12)

    def test_mvt_ir_flops(self):
        from repro.suites.polybench_la import mvt as mvt_ir

        kernel = mvt_ir()
        # two matvecs: 2 * 2 * n^2 flops (fma = 2 flops)
        assert kernel.total_flops() == pytest.approx(2 * 2 * 2000 * 2000)

    def test_three_mm_ir_flops(self):
        from repro.suites.polybench_la import three_mm as mm3_ir

        kernel = mm3_ir()
        ni, nj, nk, nl, nm = 800, 900, 1000, 1100, 1200
        expected = 2 * (ni * nj * nk + nj * nl * nm + ni * nl * nj)
        assert kernel.total_flops() == pytest.approx(expected)
