"""Integration: every quantitative claim of the paper's evaluation
section must hold on the full simulated campaign.

These are the reproduction's acceptance tests — one parametrized test
per claim in :mod:`repro.analysis.report`, plus structural assertions
about Figure 2's failure cells and the per-compiler exploration.
"""

import pytest

from repro.analysis import evaluate
from repro.analysis.report import SPEC_INT


@pytest.fixture(scope="module")
def claims(campaign_result, xeon_polybench_result):
    checks = evaluate(campaign_result, xeon_polybench_result)
    return {c.claim_id: c for c in checks}


# The claim ids encoded in the report module; keep in sync.
CLAIM_IDS = [
    "fig1.max",
    "fig1.2mm",
    "fig1.3mm",
    "s31.micro.mean",
    "s31.micro.median",
    "s31.micro.peak",
    "s31.micro.gnu_wins",
    "s31.micro.gnu_faults",
    "s31.micro.k22",
    "s31.pb.median",
    "s31.pb.mvt",
    "s31.pb.llvm_wins",
    "s32.hpl",
    "s32.stream",
    "s32.ecp.mean",
    "s32.ecp.median",
    "s32.xsbench",
    "s32.fiber.fj",
    "s32.fiber.ffb",
    "s32.fiber.mvmc",
    "s33.cpu.mean",
    "s33.int.gnu",
    "s33.int.fj_vs_clang",
    "s33.omp.mean",
    "s33.kdtree",
    "s33.spec.median",
    "overall.median",
    "s24.amg_cv",
    "s24.stream_cv",
]


@pytest.mark.parametrize("claim_id", CLAIM_IDS)
def test_paper_claim(claims, claim_id):
    claim = claims[claim_id]
    assert claim.passed, str(claim)


def test_no_unexpected_claims(claims):
    assert set(claims) == set(CLAIM_IDS)


class TestCampaignShape:
    def test_540_cells(self, campaign_result):
        # 108 benchmarks x 5 compilers
        assert len(campaign_result.records) == 540

    def test_every_cell_present(self, campaign_result):
        for bench in campaign_result.benchmarks():
            for variant in campaign_result.variants():
                assert campaign_result.has(bench, variant)

    def test_failure_cells(self, campaign_result):
        from repro.harness import STATUS_COMPILE_ERROR, STATUS_RUNTIME_ERROR

        failures = [
            (b, v, r.status)
            for (b, v), r in campaign_result.records.items()
            if r.status != "ok"
        ]
        # exactly: 6 GNU runtime errors + 1 FJclang compiler error
        assert len(failures) == 7
        assert sum(1 for *_, s in failures if s == STATUS_RUNTIME_ERROR) == 6
        assert sum(1 for *_, s in failures if s == STATUS_COMPILE_ERROR) == 1

    def test_recommended_placement_often_suboptimal(self, campaign_result):
        """The paper's conclusion: 4 ranks x 12 threads 'results in
        suboptimal time-to-solution more often than not' for the
        explored MPI+OpenMP codes."""
        from repro.suites import get_benchmark
        from repro.suites.base import ParallelKind, ScalingKind

        divergent = 0
        total = 0
        for bench_name in campaign_result.benchmarks():
            bench = get_benchmark(bench_name)
            if not (
                bench.parallel is ParallelKind.MPI_OPENMP
                and bench.scaling is ScalingKind.STRONG
            ):
                continue
            for variant in campaign_result.variants():
                rec = campaign_result.get(bench_name, variant)
                if not rec.valid:
                    continue
                total += 1
                if (rec.ranks, rec.threads) != (4, 12):
                    divergent += 1
        assert total > 0
        assert divergent / total > 0.5

    def test_polybench_runs_single_core(self, campaign_result):
        for bench in campaign_result.benchmarks():
            if bench.startswith("polybench."):
                for variant in campaign_result.variants():
                    rec = campaign_result.get(bench, variant)
                    assert (rec.ranks, rec.threads) == (1, 1)

    def test_spec_int_ordering_full(self, campaign_result):
        """GNU > FJtrad > clang-based on single-threaded integer codes."""
        for bench in SPEC_INT:
            fj = campaign_result.get(bench, "FJtrad").best_s
            llvm = campaign_result.get(bench, "LLVM").best_s
            fjclang = campaign_result.get(bench, "FJclang").best_s
            assert fj <= llvm * 1.02, bench
            assert fj <= fjclang * 1.02, bench

    def test_fortran_codes_barely_move_under_llvm(self, campaign_result):
        """Sec. 3.3: 'many applications are written in Fortran, and
        hence there is little benefit ... switching to LLVM'."""
        from repro.ir import Language
        from repro.suites import get_benchmark

        for bench_name in campaign_result.benchmarks():
            bench = get_benchmark(bench_name)
            if bench.language is not Language.FORTRAN:
                continue
            if not bench_name.startswith(("spec_", "fiber.", "micro.")):
                continue
            if bench_name == "fiber.ffb":
                continue  # the paper's named exception (FJtrad pathology)
            fj = campaign_result.get(bench_name, "FJtrad").best_s
            llvm = campaign_result.get(bench_name, "LLVM").best_s
            if fj == float("inf") or llvm == float("inf"):
                continue
            ratio = fj / llvm
            assert 0.8 < ratio < 1.25, (bench_name, ratio)

    def test_gnu_is_worst_on_multithreaded_fp(self, campaign_result):
        """Sec. 3.3: GNU 'is currently the worst choice' for
        multi-threaded FP workloads — it must be the slowest valid
        variant on a majority of SPEC OMP FP-heavy codes."""
        fp_omp = [
            b
            for b in campaign_result.benchmarks()
            if b.startswith("spec_omp.3")
            and b.split(".")[-1]
            not in ("botsalgn", "smithwa", "kdtree")  # integer/C++ cases
        ]
        worst_count = 0
        for bench in fp_omp:
            times = {
                v: campaign_result.get(bench, v).best_s
                for v in campaign_result.variants()
            }
            if max(times, key=times.get) == "GNU":
                worst_count += 1
        assert worst_count / len(fp_omp) > 0.5
