"""Golden Figure 2 winners: regression lock for the calibration.

Pins, for every benchmark, which compiler the campaign crowns
("FJtrad~" = FJtrad best or everything within 5% — the white cells of
Figure 2).  Any model or calibration change that flips a cell shows up
here, so the suite-level statistics can't silently drift while still
passing their aggregate bands.

If an *intentional* model change alters winners, regenerate with:

    python - <<'PY'
    from repro.api import CampaignConfig, CampaignSession
    from repro.analysis import benchmark_gains
    result = CampaignSession(CampaignConfig()).run()
    for g in benchmark_gains(result):
        w = g.best_variant if g.best_gain > 1.05 else "FJtrad~"
        print(f'    "{g.benchmark}": "{w}",')
    PY
"""

import pytest

GOLDEN_WINNERS = {
    "micro.k01": "FJtrad~",
    "micro.k02": "FJtrad~",
    "micro.k03": "FJtrad~",
    "micro.k04": "FJtrad~",
    "micro.k05": "FJtrad~",
    "micro.k06": "FJtrad~",
    "micro.k07": "FJtrad~",
    "micro.k08": "FJtrad~",
    "micro.k09": "FJtrad~",
    "micro.k10": "FJtrad~",
    "micro.k11": "FJtrad~",
    "micro.k12": "FJtrad~",
    "micro.k13": "FJtrad~",
    "micro.k14": "FJtrad~",
    "micro.k15": "FJtrad~",
    "micro.k16": "FJtrad~",
    "micro.k17": "FJtrad~",
    "micro.k18": "GNU",
    "micro.k19": "GNU",
    "micro.k20": "GNU",
    "micro.k21": "FJtrad~",
    "micro.k22": "GNU",
    "polybench.correlation": "LLVM",
    "polybench.covariance": "LLVM",
    "polybench.gemm": "LLVM",
    "polybench.gemver": "LLVM",
    "polybench.gesummv": "LLVM",
    "polybench.symm": "LLVM",
    "polybench.syr2k": "LLVM",
    "polybench.syrk": "LLVM",
    "polybench.trmm": "LLVM",
    "polybench.2mm": "LLVM",
    "polybench.3mm": "LLVM",
    "polybench.atax": "LLVM",
    "polybench.bicg": "LLVM",
    "polybench.doitgen": "LLVM",
    "polybench.mvt": "LLVM+Polly",
    "polybench.cholesky": "LLVM",
    "polybench.durbin": "FJclang",
    "polybench.gramschmidt": "LLVM",
    "polybench.lu": "LLVM+Polly",
    "polybench.ludcmp": "LLVM+Polly",
    "polybench.trisolv": "LLVM",
    "polybench.deriche": "GNU",
    "polybench.floyd-warshall": "GNU",
    "polybench.nussinov": "GNU",
    "polybench.adi": "LLVM+Polly",
    "polybench.fdtd-2d": "LLVM",
    "polybench.heat-3d": "LLVM",
    "polybench.jacobi-1d": "FJtrad~",
    "polybench.jacobi-2d": "FJclang",
    "polybench.seidel-2d": "GNU",
    "top500.hpl": "LLVM",
    "top500.hpcg": "LLVM+Polly",
    "top500.babelstream": "FJclang",
    "ecp.amg": "LLVM+Polly",
    "ecp.candle": "FJtrad~",
    "ecp.comd": "FJtrad~",
    "ecp.laghos": "LLVM",
    "ecp.miniamr": "FJtrad~",
    "ecp.minife": "LLVM",
    "ecp.minitri": "GNU",
    "ecp.nekbone": "FJtrad~",
    "ecp.sw4lite": "FJtrad~",
    "ecp.swfft": "LLVM",
    "ecp.xsbench": "LLVM+Polly",
    "fiber.ccs_qcd": "FJtrad~",
    "fiber.ffb": "FJclang",
    "fiber.ffvc": "FJtrad~",
    "fiber.mvmc": "LLVM",
    "fiber.ngsa": "GNU",
    "fiber.nicam": "FJtrad~",
    "fiber.ntchem": "FJtrad~",
    "fiber.modylas": "FJtrad~",
    "spec_cpu.600.perlbench_s": "GNU",
    "spec_cpu.602.gcc_s": "GNU",
    "spec_cpu.605.mcf_s": "GNU",
    "spec_cpu.620.omnetpp_s": "FJtrad~",
    "spec_cpu.623.xalancbmk_s": "GNU",
    "spec_cpu.625.x264_s": "GNU",
    "spec_cpu.631.deepsjeng_s": "GNU",
    "spec_cpu.641.leela_s": "GNU",
    "spec_cpu.648.exchange2_s": "GNU",
    "spec_cpu.657.xz_s": "GNU",
    "spec_cpu.603.bwaves_s": "FJtrad~",
    "spec_cpu.607.cactuBSSN_s": "FJtrad~",
    "spec_cpu.619.lbm_s": "FJclang",
    "spec_cpu.621.wrf_s": "FJtrad~",
    "spec_cpu.627.cam4_s": "FJtrad~",
    "spec_cpu.628.pop2_s": "FJtrad~",
    "spec_cpu.638.imagick_s": "FJclang",
    "spec_cpu.644.nab_s": "LLVM",
    "spec_cpu.649.fotonik3d_s": "FJtrad~",
    "spec_cpu.654.roms_s": "FJtrad~",
    "spec_omp.350.md": "FJtrad~",
    "spec_omp.351.bwaves": "FJtrad~",
    "spec_omp.352.nab": "LLVM+Polly",
    "spec_omp.357.bt331": "FJtrad~",
    "spec_omp.358.botsalgn": "GNU",
    "spec_omp.359.botsspar": "LLVM",
    "spec_omp.360.ilbdc": "FJtrad~",
    "spec_omp.362.fma3d": "FJtrad~",
    "spec_omp.363.swim": "FJtrad~",
    "spec_omp.367.imagick": "FJclang",
    "spec_omp.370.mgrid331": "FJtrad~",
    "spec_omp.371.applu331": "FJtrad~",
    "spec_omp.372.smithwa": "GNU",
    "spec_omp.376.kdtree": "LLVM+Polly",
}


@pytest.fixture(scope="module")
def winners(campaign_result):
    from repro.analysis import benchmark_gains

    out = {}
    for g in benchmark_gains(campaign_result):
        out[g.benchmark] = g.best_variant if g.best_gain > 1.05 else "FJtrad~"
    return out


def test_golden_covers_all_benchmarks(winners):
    assert set(winners) == set(GOLDEN_WINNERS)


@pytest.mark.parametrize("bench", sorted(GOLDEN_WINNERS))
def test_winner_cell(winners, bench):
    assert winners[bench] == GOLDEN_WINNERS[bench], (
        f"{bench}: calibration drift — expected {GOLDEN_WINNERS[bench]}, "
        f"got {winners[bench]} (regenerate the golden table if intentional)"
    )
