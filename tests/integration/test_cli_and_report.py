"""Integration tests for the CLI and the EXPERIMENTS.md generator."""

import json

import pytest

from repro.analysis import experiments_markdown, flight_recorder_markdown
from repro.cli import main
from repro.harness.results import CampaignResult


class TestExperimentsMarkdown:
    def test_contains_all_claims_and_passes(self, campaign_result, xeon_polybench_result):
        text = experiments_markdown(campaign_result, xeon_polybench_result)
        assert "| id | claim |" in text
        assert "FAIL" not in text.replace("PASS/FAIL", "")
        assert "29/29 claims pass." in text

    def test_without_xeon_reference(self, campaign_result):
        text = experiments_markdown(campaign_result)
        assert "fig1.max" not in text
        assert "overall.median" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "polybench" in out
        assert "108" not in out or True  # just exercise it

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "2mm" in out

    def test_figure2_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig2.csv"
        assert main(["figure2", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        content = csv_path.read_text()
        assert "polybench,polybench.mvt" in content

    def test_run_saves_json(self, capsys, tmp_path):
        out_path = tmp_path / "results.json"
        assert main(["run", "--out", str(out_path)]) == 0
        from repro.harness import CampaignResult

        loaded = CampaignResult.load(out_path)
        assert len(loaded.records) == 540

    def test_report_exit_zero_when_all_pass(self, capsys, tmp_path):
        out_path = tmp_path / "EXP.md"
        assert main(["report", "--out", str(out_path)]) == 0
        assert "claims pass" in out_path.read_text()


class TestCliExtensions:
    def test_show(self, capsys):
        assert main(["show", "polybench.2mm"]) == 0
        out = capsys.readouterr().out
        assert "order=ikj" in out  # LLVM's interchange visible
        assert "order=ijk" in out  # FJtrad's missed interchange visible
        assert "gain=" in out

    def test_show_failure_cell(self, capsys):
        assert main(["show", "micro.k22"]) == 0
        out = capsys.readouterr().out
        assert "compiler error" in out

    def test_advise(self, capsys):
        assert main(["advise"]) == 0
        out = capsys.readouterr().out
        assert "Fortran codes: use FJtrad" in out
        assert "integer-intensive apps: use GNU" in out
        assert "clang-based" in out
        assert 'No "silver bullet"' in out

    def test_figure1_svg_export(self, capsys, tmp_path):
        svg = tmp_path / "fig1.svg"
        assert main(["figure1", "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")

    def test_figure2_svg_export(self, capsys, tmp_path):
        svg = tmp_path / "fig2.svg"
        assert main(["figure2", "--svg", str(svg)]) == 0
        assert "compiler error" in svg.read_text()


class TestKernelCommand:
    def test_kernel_file_workflow(self, capsys, tmp_path):
        from repro.ir import kernel_to_json
        from tests.conftest import build_gemm

        path = tmp_path / "k.json"
        path.write_text(kernel_to_json(build_gemm(256)))
        assert main(["kernel", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recommendation: LLVM" in out
        assert "interchange" in out

    def test_kernel_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "name": "x"}')
        with pytest.raises(Exception):
            main(["kernel", str(path)])


class TestCliTrace:
    """run --trace/--metrics plus the trace summarize/validate commands."""

    def _run(self, tmp_path, extra=()):
        trace = tmp_path / "trace.json"
        argv = [
            "run", "--benchmark", "micro.k01", "--benchmark", "micro.k02",
            "--variant", "GNU", "--variant", "LLVM",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", str(trace), *extra,
        ]
        assert main(argv) == 0
        return trace

    def test_trace_file_validates(self, capsys, tmp_path):
        trace = self._run(tmp_path)
        assert trace.exists()
        assert main(["trace", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace_event file" in out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"campaign", "cell", "compile", "simulate"} <= names

    def test_trace_validate_rejects_junk(self, capsys, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps({"nope": 1}))
        assert main(["trace", "validate", str(junk)]) == 1

    def test_trace_summarize(self, capsys, tmp_path):
        trace = self._run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "campaign flight recorder" in out
        assert "parallel efficiency" in out
        assert "cache hit rate" in out

    def test_metrics_prints_flight_report(self, capsys, tmp_path):
        self._run(tmp_path, extra=["--metrics"])
        out = capsys.readouterr().out
        assert "campaign flight recorder" in out
        assert "cache hit rate" in out
        # --metrics without --out suppresses the raw result JSON dump.
        assert '"records"' not in out

    def test_span_log_jsonl(self, capsys, tmp_path):
        log = tmp_path / "spans.jsonl"
        self._run(tmp_path, extra=["--span-log", str(log)])
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert lines[-1]["kind"] == "metrics"
        assert any(l.get("name") == "campaign" for l in lines)

    def test_saved_result_renders_flight_recorder(self, capsys, tmp_path):
        out_path = tmp_path / "result.json"
        self._run(tmp_path, extra=["--out", str(out_path)])
        result = CampaignResult.load(out_path)
        section = flight_recorder_markdown(result)
        assert "## Campaign flight recorder" in section
        assert "parallel efficiency" in section
        # Results saved without telemetry render no section at all.
        assert flight_recorder_markdown(CampaignResult(machine="A64FX")) == ""


class TestCliLint:
    def test_polybench_flags_2mm_3mm_interchange(self, capsys):
        assert main(["lint", "--suite", "polybench"]) == 0
        out = capsys.readouterr().out
        assert "OPT010" in out
        assert "[2mm/" in out and "[3mm/" in out
        assert "icc does, fcc does not" in out
        assert "finding(s):" in out

    def test_single_benchmark_rule_filter(self, capsys):
        assert main(["lint", "--benchmark", "polybench.2mm",
                     "--rule", "OPT010"]) == 0
        out = capsys.readouterr().out
        assert "OPT010" in out
        assert "VEC003" not in out

    def test_sarif_output_validates(self, capsys, tmp_path):
        from repro.staticanalysis import validate_sarif

        path = tmp_path / "lint.sarif"
        assert main(["lint", "--suite", "polybench", "--format", "sarif",
                     "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert validate_sarif(doc) == []
        assert any(
            r["ruleId"] == "OPT010"
            for r in doc["runs"][0]["results"]
        )

    def test_json_output(self, capsys):
        assert main(["lint", "--benchmark", "polybench.2mm",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "OPT010" for f in doc["findings"])

    def test_fail_on_warning_trips_on_findings(self, capsys):
        assert main(["lint", "--benchmark", "polybench.2mm",
                     "--fail-on", "warning"]) == 1
        err = capsys.readouterr().err
        assert "lint gate" in err

    def test_fail_on_error_passes_clean_suites(self, capsys):
        # The shipped suites must stay free of ERROR-severity findings
        # (this is the CI lint gate's invariant).
        assert main(["lint", "--fail-on", "error"]) == 0


class TestCliTune:
    def test_list_scenarios(self, capsys):
        assert main(["tune", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "gemm-int8-sdot" in out
        assert "placement:" in out

    def test_gemm_default_rediscovers_and_saves(self, capsys, tmp_path):
        out_path = tmp_path / "tune.json"
        assert main(["tune", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mr=6,nr=4,kc=256,unroll=2" in out
        assert "rediscovered" in out
        doc = json.loads(out_path.read_text())
        assert doc["best"]["label"] == "mr=6,nr=4,kc=256,unroll=2"
        assert doc["complete"] is True

    def test_placement_scenario_grid(self, capsys):
        assert main([
            "tune", "--scenario", "placement:polybench.gemm:GNU",
            "--strategy", "grid",
        ]) == 0
        assert "placement=1x1" in capsys.readouterr().out

    def test_metrics_prints_counters(self, capsys):
        assert main(["tune", "--strategy", "random", "--samples", "12",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "tuner.evaluations" in out

    def test_resume_round_trip(self, capsys, tmp_path):
        argv = ["tune", "--strategy", "random", "--samples", "12",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        # the resumed run replays the journal and agrees on the winner
        best_lines = [l for l in first.splitlines() if l.startswith("best")]
        assert best_lines and best_lines[0] in second


class TestTuningReport:
    @pytest.fixture(scope="class")
    def tune_result(self):
        from repro.api import TuneSpec, run_tune

        return run_tune(TuneSpec())

    def test_section_contents(self, tune_result):
        from repro.analysis import tuning_markdown

        text = tuning_markdown(tune_result)
        assert "## Auto-tuning" in text
        assert "`mr=6,nr=4,kc=256,unroll=2`" in text
        assert "rediscovered" in text
        assert "| rung | configs | trials | best | score |" in text

    def test_none_renders_empty(self):
        from repro.analysis import tuning_markdown

        assert tuning_markdown(None) == ""

    def test_experiments_markdown_appends_section(
        self, campaign_result, tune_result
    ):
        text = experiments_markdown(campaign_result, tune=tune_result)
        assert "## Auto-tuning" in text
        # the tuning section sits after the claim table
        assert text.index("| id | claim |") < text.index("## Auto-tuning")
