"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_enough_scripts():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"


class TestExampleContent:
    def _run(self, script):
        return subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=300,
        ).stdout

    def test_quickstart_reports_the_headline(self):
        out = self._run("quickstart.py")
        assert "median runtime improvement" in out
        assert "paper: 16%" in out

    def test_bakeoff_shows_the_interchange_split(self):
        out = self._run("compiler_bakeoff.py")
        assert "ijk" in out and "ikj" in out

    def test_energy_study_lands_near_green500(self):
        out = self._run("energy_study.py")
        assert "GF/W" in out
        assert "Green500" in out
