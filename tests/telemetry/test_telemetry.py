"""Unit tests for the telemetry core: spans, metrics, exporters, and
the flight recorder."""

import json
import threading

import pytest

from repro import telemetry
from repro.errors import AnalysisError
from repro.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    chrome_trace,
    flight_report,
    load_trace,
    render_flight_report,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


class TestTracer:
    def test_nesting_links_parents(self):
        tel = Telemetry()
        with tel.span("campaign") as root:
            with tel.span("cell") as cell:
                with tel.span("compile") as compile_span:
                    pass
        assert cell.parent_id == root.span_id
        assert compile_span.parent_id == cell.span_id
        assert root.parent_id is None
        names = [s.name for s in tel.spans]
        assert names == ["compile", "cell", "campaign"]  # completion order

    def test_span_ids_unique_and_pid_tagged(self):
        tel = Telemetry()
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        ids = [s.span_id for s in tel.spans]
        assert len(set(ids)) == 2
        assert all(str(s.pid) == s.span_id.split("-")[0] for s in tel.spans)

    def test_ids_unique_across_tracer_instances(self):
        # Regression: a pool worker builds a fresh Telemetry per chunk;
        # with a per-tracer sequence, chunk N and chunk N+1 from the
        # same pid reused ids and the merged trace cross-linked parents.
        a, b = Telemetry(), Telemetry()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        assert a.spans[0].span_id != b.spans[0].span_id

    def test_sibling_spans_share_parent(self):
        tel = Telemetry()
        with tel.span("root") as root:
            with tel.span("first"):
                pass
            with tel.span("second"):
                pass
        children = [s for s in tel.spans if s.name != "root"]
        assert all(s.parent_id == root.span_id for s in children)

    def test_timestamps_monotone(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                pass
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_attrs_and_set(self):
        tel = Telemetry()
        with tel.span("cell", benchmark="a.b") as span:
            span.set(variant="GNU")
        assert tel.spans[0].attrs == {"benchmark": "a.b", "variant": "GNU"}

    def test_per_thread_stacks(self):
        tel = Telemetry()
        seen = {}

        def worker():
            with tel.span("thread-span") as s:
                seen["parent"] = s.parent_id

        with tel.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The thread's span must NOT nest under the main thread's span.
        assert seen["parent"] is None

    def test_round_trip_dict(self):
        span = Span(name="x", start_s=1.0, end_s=2.5, pid=7, tid=9,
                    span_id="7-1", parent_id="7-0", attrs={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span


class TestActiveTelemetry:
    def test_disabled_by_default(self):
        assert telemetry.current() is None
        # All module-level helpers are no-ops and never raise.
        with telemetry.span("nope") as s:
            s.set(ignored=True)
        telemetry.count("nope")
        telemetry.observe("nope", 1.0)
        telemetry.set_gauge("nope", 1.0)

    def test_active_scope_installs_and_restores(self):
        tel = Telemetry()
        with telemetry.active(tel):
            assert telemetry.current() is tel
            telemetry.count("c", 3)
            with telemetry.span("s"):
                pass
        assert telemetry.current() is None
        assert tel.metrics.counter_value("c") == 3
        assert [s.name for s in tel.spans] == ["s"]

    def test_active_none_is_noop_scope(self):
        with telemetry.active(None):
            assert telemetry.current() is None


class TestMetrics:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        reg.set("workers", 8)
        assert reg.counter_value("hits") == 5
        assert reg.counter_value("absent") == 0
        assert reg.gauges["workers"].value == 8

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(56.2)
        assert h.mean == pytest.approx(14.05)

    def test_snapshot_merge_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.observe("t", 0.5)
        b.observe("t", 0.7)
        b.set("g", 4)
        a.merge(b.snapshot())
        assert a.counter_value("n") == 5
        assert a.counter_value("only_b") == 1
        assert a.histograms["t"].count == 2
        assert a.histograms["t"].total == pytest.approx(1.2)
        assert a.gauges["g"].value == 4

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 0.1)
        json.dumps(reg.snapshot())


class TestWorkerMerge:
    def test_merge_reparents_orphans_under_root(self):
        parent = Telemetry()
        with parent.span("campaign") as root:
            worker = Telemetry()  # simulates an in-worker recording
            with worker.span("cell", benchmark="a.b", variant="GNU"):
                with worker.span("compile"):
                    pass
            worker.count("cell_cache.hit")
            parent.merge(worker.snapshot(), parent=root)
        spans = {s.name: s for s in parent.spans}
        assert spans["cell"].parent_id == root.span_id
        assert spans["compile"].parent_id == spans["cell"].span_id
        assert parent.metrics.counter_value("cell_cache.hit") == 1

    def test_snapshot_survives_json(self):
        tel = Telemetry()
        with tel.span("cell"):
            pass
        tel.count("c")
        snap = json.loads(json.dumps(tel.snapshot()))
        other = Telemetry()
        other.merge(snap)
        assert [s.name for s in other.spans] == ["cell"]
        assert other.metrics.counter_value("c") == 1


class TestExporters:
    def _sample(self):
        tel = Telemetry()
        with tel.span("campaign", workers=2):
            with tel.span("cell", benchmark="a.b", variant="GNU"):
                with tel.span("compile", kernel="k"):
                    pass
        tel.count("cell_cache.hit", 3)
        tel.count("cell_cache.miss", 1)
        return tel

    def test_chrome_trace_shape_is_valid(self):
        tel = self._sample()
        doc = chrome_trace(tel.spans, tel.metrics.snapshot())
        assert validate_chrome_trace(doc) == []
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in x_events} == {"campaign", "cell", "compile"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
        # Metadata names the process track.
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        json.dumps(doc)  # serializable

    def test_validate_rejects_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "?"}]}) != []
        bad_ts = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}
        ]}
        assert any("ts" in p for p in validate_chrome_trace(bad_ts))

    def test_chrome_file_round_trip(self, tmp_path):
        tel = self._sample()
        path = write_chrome_trace(tmp_path / "trace.json", tel)
        spans, metrics = load_trace(path)
        assert {s.name for s in spans} == {"campaign", "cell", "compile"}
        assert metrics["counters"]["cell_cache.hit"] == 3
        cell = next(s for s in spans if s.name == "cell")
        assert cell.attrs["benchmark"] == "a.b"
        # Parent links survive the chrome round trip.
        campaign = next(s for s in spans if s.name == "campaign")
        assert cell.parent_id == campaign.span_id

    def test_jsonl_round_trip(self, tmp_path):
        tel = self._sample()
        path = write_jsonl(tmp_path / "spans.jsonl", tel)
        spans, metrics = load_trace(path)
        assert [s.name for s in spans] == ["compile", "cell", "campaign"]
        assert metrics["counters"]["cell_cache.miss"] == 1

    def test_jsonl_tolerates_truncated_tail(self, tmp_path):
        tel = self._sample()
        text = spans_to_jsonl(tel.spans)
        path = tmp_path / "spans.jsonl"
        path.write_text(text + '{"kind": "span", "name": "tru')
        spans, _ = load_trace(path)
        assert len(spans) == 3

    def test_load_trace_rejects_non_trace(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("hello world")
        with pytest.raises(AnalysisError):
            load_trace(path)
        with pytest.raises(AnalysisError):
            load_trace(tmp_path / "missing.json")


class TestFlightRecorder:
    def test_report_numbers(self):
        spans = [
            Span("campaign", 0.0, 10.0, pid=1, tid=1, span_id="1-1",
                 attrs={"workers": 2}),
            Span("cell", 0.0, 6.0, pid=2, tid=1, span_id="2-1",
                 parent_id="1-1", attrs={"benchmark": "a.b", "variant": "GNU"}),
            Span("cell", 0.0, 4.0, pid=3, tid=1, span_id="3-1",
                 parent_id="1-1", attrs={"benchmark": "a.c", "variant": "LLVM"}),
        ]
        metrics = {"counters": {"cell_cache.hit": 3, "cell_cache.miss": 1}}
        report = flight_report(spans, metrics)
        assert report.wall_s == pytest.approx(10.0)
        assert report.workers == 2
        assert report.cells == 2
        assert report.busy_s == pytest.approx(10.0)
        assert report.parallel_efficiency == pytest.approx(0.5)
        assert report.cache_hit_rate == pytest.approx(0.75)
        assert report.slowest_cells[0].benchmark == "a.b"
        assert report.slowest_cells[0].duration_s == pytest.approx(6.0)

    def test_report_without_cache_or_cells(self):
        spans = [Span("campaign", 0.0, 1.0, pid=1, tid=1, span_id="1-1",
                      attrs={"workers": 4})]
        report = flight_report(spans, {})
        assert report.parallel_efficiency is None
        assert report.cache_hit_rate is None

    def test_render_contains_the_answers(self):
        spans = [
            Span("campaign", 0.0, 2.0, pid=1, tid=1, span_id="1-1",
                 attrs={"workers": 1}),
            Span("cell", 0.0, 2.0, pid=1, tid=1, span_id="1-2",
                 parent_id="1-1", attrs={"benchmark": "a.b", "variant": "GNU"}),
        ]
        text = render_flight_report(flight_report(spans, {
            "counters": {"cell_cache.hit": 1, "cell_cache.miss": 1}
        }))
        assert "parallel efficiency" in text
        assert "cache hit rate" in text
        assert "50.0%" in text
        assert "a.b/GNU" in text
