"""Tests for the campaign observatory: structured logs, metrics
history, Prometheus exposition, and the HTTP endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.harness.engine import CampaignEngine
from repro.suites import micro_suite
from repro.telemetry import (
    CampaignHistory,
    HistorySample,
    HistoryStore,
    MetricsRegistry,
    ObservatoryServer,
    StructuredLogger,
    Telemetry,
    history_file_name,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.history import baseline_throughput
from repro.telemetry.promexport import metric_name


def _sample(t=1.0, completed=1, total=4, **kw):
    defaults = dict(
        t=t, elapsed_s=t, completed=completed, total=total, executed=completed,
        cache_hits=0, resumed=0, failures=0, retried=0,
        throughput_cps=completed / t, eta_s=None, cache_hit_rate=None,
    )
    defaults.update(kw)
    return HistorySample(**defaults)


# -- structured logging ----------------------------------------------------


class TestStructuredLog:
    def test_disabled_by_default(self):
        assert telemetry.active_logger() is None
        telemetry.log_event("nobody.listening", answer=42)  # must not raise

    def test_context_merged_into_records(self):
        logger = StructuredLogger()
        with telemetry.logging_active(logger):
            with telemetry.context(campaign="abc123", shard="1of2"):
                with telemetry.context(cell="micro.k01/GNU"):
                    telemetry.log_event("unit.test", attempt=0)
        (record,) = logger.records
        assert record["event"] == "unit.test"
        assert record["campaign"] == "abc123"
        assert record["shard"] == "1of2"
        assert record["cell"] == "micro.k01/GNU"
        assert record["attempt"] == 0
        assert record["level"] == "info"

    def test_reserved_keys_namespaced_not_clobbered(self):
        logger = StructuredLogger()
        with telemetry.logging_active(logger):
            with telemetry.context(event="ctx-event"):
                telemetry.log_event("real.event", t="field-t")
        (record,) = logger.records
        assert record["event"] == "real.event"
        assert record["ctx.event"] == "ctx-event"
        assert record["field.t"] == "field-t"
        assert isinstance(record["t"], float)

    def test_context_restored_after_scope(self):
        logger = StructuredLogger()
        with telemetry.logging_active(logger):
            with telemetry.context(cell="a/b"):
                pass
            telemetry.log_event("after.scope")
        (record,) = logger.records
        assert "cell" not in record

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger(path)
        with telemetry.logging_active(logger):
            telemetry.log_event("one", level="warning", n=1)
            telemetry.log_event("two", n=2)
        logger.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["event"] for r in lines] == ["one", "two"]
        assert lines[0]["level"] == "warning"

    def test_merge_writes_through_and_keeps_order(self, tmp_path):
        worker = StructuredLogger()  # buffer-only, like a pool worker
        with telemetry.logging_active(worker):
            with telemetry.context(cell="x/y"):
                telemetry.log_event("worker.event")
        parent = StructuredLogger(tmp_path / "log.jsonl")
        parent.merge(worker.snapshot())
        parent.close()
        (record,) = parent.records
        assert record["event"] == "worker.event"
        assert record["cell"] == "x/y"
        on_disk = [json.loads(l) for l in
                   (tmp_path / "log.jsonl").read_text().splitlines()]
        assert on_disk == list(parent.records)

    def test_write_error_counted_not_raised(self, tmp_path):
        tel = Telemetry()
        logger = StructuredLogger(tmp_path)  # a directory: open() fails
        with telemetry.active(tel), telemetry.logging_active(logger):
            telemetry.log_event("doomed")
        assert logger.write_errors == 1
        assert logger.records  # buffered despite the failed write
        assert tel.metrics.counter_value("log.write_error") == 1


class TestLogEquality:
    """Serial and parallel runs must log the same events (PR 2
    invariant, extended to the log stream)."""

    def _run(self, machine, workers):
        logger = StructuredLogger()
        benches = micro_suite().benchmarks[:4]
        with telemetry.logging_active(logger):
            result = CampaignEngine(
                machine, variants=("GNU", "LLVM"), benchmarks=benches,
                workers=workers,
            ).run()
        return logger, result

    @staticmethod
    def _essence(logger):
        # Timestamps, pids, completion order and prose (which embeds
        # the worker count) differ between modes; the logged facts —
        # which event, for which cell, with what correlation ids and
        # status — must not.
        volatile = ("t", "pid", "completed", "message")
        out = []
        for r in logger.records:
            out.append(tuple(sorted(
                (k, str(v)) for k, v in r.items() if k not in volatile
            )))
        return sorted(out)

    def test_serial_and_parallel_log_identical_events(self, a64fx_machine):
        serial_log, serial = self._run(a64fx_machine, workers=1)
        parallel_log, parallel = self._run(a64fx_machine, workers=3)
        assert parallel.records == serial.records
        assert self._essence(parallel_log) == self._essence(serial_log)

    def test_records_carry_correlation_ids(self, a64fx_machine):
        logger, result = self._run(a64fx_machine, workers=3)
        assert logger.records
        campaigns = {r.get("campaign") for r in logger.records}
        assert len(campaigns) == 1 and None not in campaigns
        assert all(r.get("shard") == "1of1" for r in logger.records)
        finished = {(r["benchmark"], r["variant"]) for r in logger.records
                    if r["event"] in ("engine.cell_finished",
                                      "engine.cell_failed")}
        expected = {(rec.benchmark, rec.variant)
                    for rec in result.records.values()}
        assert finished == expected


# -- metrics history -------------------------------------------------------


class TestHistoryFileNames:
    def test_unsharded_keeps_legacy_name(self):
        assert history_file_name(1, 1) == "history.jsonl"

    def test_sharded(self):
        assert history_file_name(2, 4) == "history-2of4.jsonl"


class TestCampaignHistory:
    def test_round_trip(self, tmp_path):
        hist = CampaignHistory(tmp_path / "history.jsonl")
        assert hist.start("fp-1", (1, 1))
        hist.append(_sample(t=1.0, completed=1))
        hist.append(_sample(t=2.0, completed=2,
                            counters={"runner.cells": 2},
                            histograms={"runner.explore_s":
                                        {"count": 2, "total": 0.5}}))
        hist.close()
        fingerprint, shard, samples = hist.load()
        assert fingerprint == "fp-1"
        assert shard == (1, 1)
        assert [s.completed for s in samples] == [1, 2]
        assert samples[1].counters == {"runner.cells": 2}
        assert samples[1].histograms["runner.explore_s"]["count"] == 2

    def test_same_fingerprint_appends_a_run_segment(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for run in range(2):
            hist = CampaignHistory(path)
            hist.start("fp-1")
            hist.append(_sample(t=float(run + 1)))
            hist.close()
        runs = CampaignHistory(path).runs()
        assert len(runs) == 2
        assert all(header["fingerprint"] == "fp-1" for header, _ in runs)
        # load() folds both segments into one stream
        _, _, samples = CampaignHistory(path).load()
        assert len(samples) == 2

    def test_fingerprint_change_replaces_file(self, tmp_path):
        path = tmp_path / "history.jsonl"
        old = CampaignHistory(path)
        old.start("fp-old")
        old.append(_sample())
        old.close()
        new = CampaignHistory(path)
        new.start("fp-new")
        new.append(_sample(t=9.0))
        new.close()
        fingerprint, _, samples = CampaignHistory(path).load()
        assert fingerprint == "fp-new"
        assert [s.t for s in samples] == [9.0]
        assert len(CampaignHistory(path).runs()) == 1

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        hist = CampaignHistory(path)
        hist.start("fp-1")
        hist.append(_sample())
        hist.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "sample", "t": 3.0, "comp')  # kill mid-write
        _, _, samples = CampaignHistory(path).load()
        assert len(samples) == 1

    def test_write_failure_counted_not_raised(self, tmp_path):
        tel = Telemetry()
        with telemetry.active(tel):
            hist = CampaignHistory(tmp_path / "no" / "such")
            # parent mkdir succeeds, but the path itself is a dir now
            (tmp_path / "no" / "such").mkdir(parents=True)
            assert hist.start("fp") is False
        assert tel.metrics.counter_value("history.write_error") == 1
        assert hist.append(_sample()) is False  # closed history: quiet no-op

    def test_samples_counted_on_success(self, tmp_path):
        tel = Telemetry()
        with telemetry.active(tel):
            hist = CampaignHistory(tmp_path / "history.jsonl")
            hist.start("fp")
            hist.append(_sample())
            hist.append(_sample(t=2.0))
            hist.close()
        assert tel.metrics.counter_value("history.samples") == 2


class TestHistoryStore:
    def test_merges_shards_and_skips_stale(self, tmp_path):
        for index in (1, 2):
            hist = CampaignHistory(tmp_path / history_file_name(index, 2))
            hist.start("fp-live", (index, 2))
            hist.append(_sample(t=float(index), throughput_cps=2.0))
            hist.close()
        stale = CampaignHistory(tmp_path / "history.jsonl")
        stale.start("fp-stale")
        stale.append(_sample())
        stale.close()
        merged = HistoryStore(tmp_path).merge(expect_fingerprint="fp-live")
        assert merged.fingerprint == "fp-live"
        assert {sh.shard for sh in merged.shards} == {(1, 2), (2, 2)}
        assert merged.throughput_cps == pytest.approx(4.0)
        assert [s.t for s in merged.samples] == [1.0, 2.0]

    def test_empty_dir_merges_to_none(self, tmp_path):
        assert HistoryStore(tmp_path).merge() is None

    def test_engine_writes_history_through_worker_pool(
        self, a64fx_machine, tmp_path
    ):
        tel = Telemetry()
        benches = micro_suite().benchmarks[:4]
        result = CampaignEngine(
            a64fx_machine, variants=("GNU", "LLVM"), benchmarks=benches,
            workers=3, cache_dir=tmp_path, telemetry=tel,
        ).run()
        merged = HistoryStore(tmp_path).merge()
        assert merged is not None
        # One sample per completed cell plus the final aggregate one.
        cells = len(result.records)
        per_cell = [s for s in merged.samples if s.cell]
        assert len(per_cell) == cells
        last = merged.samples[-1]
        assert last.completed == cells
        # The sampled counters round-tripped the pool merge: the final
        # sample's totals equal the parent telemetry's.
        assert last.counters.get("runner.cells") == \
            tel.metrics.counter_value("runner.cells")
        assert result.meta["history"].endswith("history.jsonl")

    def test_serial_and_parallel_history_totals_match(
        self, a64fx_machine, tmp_path
    ):
        benches = micro_suite().benchmarks[:4]

        def final_sample(workers, where):
            CampaignEngine(
                a64fx_machine, variants=("GNU", "LLVM"), benchmarks=benches,
                workers=workers, cache_dir=where, telemetry=Telemetry(),
            ).run()
            return HistoryStore(where).merge().samples[-1]

        serial = final_sample(1, tmp_path / "serial")
        parallel = final_sample(3, tmp_path / "parallel")
        deterministic = ("engine.cells_executed", "runner.cells",
                         "runner.perf_runs", "history.samples")
        for name in deterministic:
            assert serial.counters.get(name) == \
                parallel.counters.get(name), name
        assert serial.completed == parallel.completed
        assert serial.executed == parallel.executed


class TestBaselineThroughput:
    def test_computes_rate_from_grid(self):
        doc = {"scenarios": {"cold_serial_s": 2.0},
               "grid": {"suites": ["micro"], "variants": ["GNU", "LLVM"]}}
        benches = len(micro_suite().benchmarks)
        assert baseline_throughput(doc) == pytest.approx(benches * 2 / 2.0)

    def test_incomplete_document_gives_none(self):
        assert baseline_throughput({}) is None
        assert baseline_throughput({"scenarios": {"cold_serial_s": 1}}) is None

    def test_unknown_suite_gives_none(self):
        doc = {"scenarios": {"cold_serial_s": 1.0},
               "grid": {"suites": ["not-a-suite"], "variants": ["GNU"]}}
        assert baseline_throughput(doc) is None


# -- Prometheus exposition -------------------------------------------------


class TestPromExport:
    def test_counter_gains_total_suffix_and_namespace(self):
        assert metric_name("engine.cells_executed", "counter") == \
            "a64fx_engine_cells_executed_total"
        assert metric_name("engine.eta_s", "gauge") == "a64fx_engine_eta_s"

    def test_render_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("engine.cells_executed", 5)
        reg.set("engine.eta_s", 12.5)
        text = render_prometheus(reg)
        assert "# TYPE a64fx_engine_cells_executed_total counter" in text
        assert "a64fx_engine_cells_executed_total 5" in text
        assert "# TYPE a64fx_engine_eta_s gauge" in text
        assert "a64fx_engine_eta_s 12.5" in text
        assert "# HELP a64fx_engine_cells_executed_total " in text

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        for value in (0.0005, 0.003, 0.003, 5000.0):  # last overflows
            reg.observe("runner.explore_s", value)
        text = render_prometheus(reg)
        bucket_lines = [l for l in text.splitlines()
                        if l.startswith("a64fx_runner_explore_s_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 4
        assert "a64fx_runner_explore_s_count 4" in text
        assert "a64fx_runner_explore_s_sum" in text

    def test_labels_attached_and_escaped(self):
        reg = MetricsRegistry()
        reg.inc("engine.cells_executed")
        reg.observe("runner.explore_s", 0.1)
        text = render_prometheus(reg, labels={"shard": '1of2',
                                              "machine": 'A"64\\FX'})
        assert 'shard="1of2"' in text
        assert '\\"64\\\\FX' in text  # quote and backslash escaped
        # histogram buckets carry both the shard label and le
        assert any('shard="1of2"' in l and 'le="' in l
                   for l in text.splitlines() if "_bucket" in l)

    def test_rendered_output_is_conformant(self):
        reg = MetricsRegistry()
        reg.inc("engine.cells_executed", 3)
        reg.inc("log.records", 17)
        reg.set("engine.progress.completed", 3)
        reg.set("engine.cache_hit_rate", 0.25)
        reg.observe("runner.explore_s", 0.004)
        reg.observe("engine.cell_s", 0.1)
        text = render_prometheus(reg, labels={"shard": "2of4"})
        assert validate_exposition(text) == []

    def test_snapshot_dict_renders_identically(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 2)
        reg.observe("c.d", 1.0)
        assert render_prometheus(reg.snapshot()) == render_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestValidateExposition:
    def test_catches_type_after_samples(self):
        text = ("a64fx_x_total 1\n"
                "# HELP a64fx_x_total x.\n"
                "# TYPE a64fx_x_total counter\n")
        assert any("after its samples" in p or "without TYPE" in p
                   for p in validate_exposition(text))

    def test_catches_negative_counter(self):
        text = ("# HELP a64fx_x_total x.\n"
                "# TYPE a64fx_x_total counter\n"
                "a64fx_x_total -3\n")
        assert any("negative" in p for p in validate_exposition(text))

    def test_catches_missing_inf_bucket(self):
        text = ("# HELP a64fx_h h.\n"
                "# TYPE a64fx_h histogram\n"
                'a64fx_h_bucket{le="1"} 1\n'
                "a64fx_h_sum 0.5\n"
                "a64fx_h_count 1\n")
        assert any("+Inf" in p for p in validate_exposition(text))

    def test_catches_non_cumulative_buckets(self):
        text = ("# HELP a64fx_h h.\n"
                "# TYPE a64fx_h histogram\n"
                'a64fx_h_bucket{le="1"} 5\n'
                'a64fx_h_bucket{le="2"} 3\n'
                'a64fx_h_bucket{le="+Inf"} 5\n'
                "a64fx_h_sum 1\n"
                "a64fx_h_count 5\n")
        assert any("cumulative" in p for p in validate_exposition(text))

    def test_catches_count_bucket_disagreement(self):
        text = ("# HELP a64fx_h h.\n"
                "# TYPE a64fx_h histogram\n"
                'a64fx_h_bucket{le="+Inf"} 5\n'
                "a64fx_h_sum 1\n"
                "a64fx_h_count 7\n")
        assert any("_count" in p for p in validate_exposition(text))

    def test_catches_duplicate_series(self):
        text = ("# HELP a64fx_g g.\n"
                "# TYPE a64fx_g gauge\n"
                "a64fx_g 1\n"
                "a64fx_g 2\n")
        assert any("duplicate series" in p for p in validate_exposition(text))


# -- the HTTP endpoint -----------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode()


class TestObservatoryServer:
    def test_serves_metrics_health_progress(self):
        reg = MetricsRegistry()
        reg.inc("engine.cells_executed", 7)
        server = ObservatoryServer(
            metrics=reg.snapshot,
            progress=lambda: {"state": "running", "completed": 7},
            health=lambda: {"fingerprint": "fp"},
            labels={"shard": "1of1"},
        )
        with server:
            assert server.port != 0  # ephemeral port resolved
            status, ctype, text = _get(server.url + "/metrics")
            assert status == 200
            assert "version=0.0.4" in ctype
            assert "a64fx_engine_cells_executed_total" in text
            assert 'shard="1of1"' in text
            assert validate_exposition(text) == []

            status, ctype, text = _get(server.url + "/healthz")
            doc = json.loads(text)
            assert (status, doc["status"], doc["fingerprint"]) == \
                (200, "ok", "fp")

            status, _, text = _get(server.url + "/progress")
            assert json.loads(text)["completed"] == 7

    def test_unknown_route_404s(self):
        with ObservatoryServer(metrics=dict) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404

    def test_taken_port_falls_back_to_ephemeral(self):
        with ObservatoryServer(metrics=dict) as first:
            taken = first.port
            # A fixed port that is already bound must not kill the
            # campaign; the server falls back to a kernel-assigned
            # port and publishes it.
            with ObservatoryServer(metrics=dict, port=taken) as second:
                assert second.port != taken
                status, _, _ = _get(second.url + "/healthz")
                assert status == 200

    def test_provider_error_500s_not_crashes(self):
        def boom():
            raise RuntimeError("provider exploded")

        with ObservatoryServer(progress=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/progress")
            assert err.value.code == 500
            # the server survived: another route still answers
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
