"""Shared fixtures: machines, canonical kernels, and (session-scoped)
campaign results so the integration tests pay the campaign cost once."""

from __future__ import annotations

import pytest

from repro.ir import KernelBuilder, Language, read, update, write
from repro.machine import Placement, a64fx, xeon


@pytest.fixture(scope="session")
def a64fx_machine():
    return a64fx()


@pytest.fixture(scope="session")
def xeon_machine():
    return xeon()


def build_gemm(n: int = 256, language: Language = Language.C, name: str = "gemm_test"):
    """The canonical i-j-k matmul used across compiler/perf tests."""
    b = KernelBuilder(name, language)
    b.array("A", (n, n))
    b.array("B", (n, n))
    b.array("C", (n, n))
    b.nest(
        loops=[("i", n), ("j", n), ("k", n)],
        body=[
            b.stmt(
                update("C", "i", "j"),
                read("A", "i", "k"),
                read("B", "k", "j"),
                fma=1,
                reduction="k",
            )
        ],
    )
    return b.build()


def build_stream(n: int = 4096, language: Language = Language.C, name: str = "triad_test"):
    """A triad stream kernel (one parallel loop)."""
    b = KernelBuilder(name, language)
    b.array("a", (n,))
    b.array("bb", (n,))
    b.array("c", (n,))
    b.nest(
        loops=[("i", n)],
        body=[b.stmt(write("a", "i"), read("bb", "i"), read("c", "i"), fma=1)],
        parallel=("i",),
    )
    return b.build()


@pytest.fixture
def gemm_kernel():
    return build_gemm()


@pytest.fixture
def stream_kernel():
    return build_stream()


@pytest.fixture(scope="session")
def campaign_result():
    """The full 108x5 A64FX campaign (computed once per test session)."""
    from repro.api import CampaignConfig, CampaignSession

    return CampaignSession(CampaignConfig()).run()


@pytest.fixture(scope="session")
def xeon_polybench_result():
    from repro.harness import run_polybench_xeon

    return run_polybench_xeon()


@pytest.fixture
def single_core():
    return Placement(1, 1)
