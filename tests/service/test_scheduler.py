"""Scheduler semantics: dedupe, fan-in, cancel, resume, event order.

Everything here drives :class:`CampaignScheduler` directly on a private
event loop (``asyncio.run``) with ``workers=0`` — cells execute on
threads in-process, so the tests are fast, deterministic, and need no
process pool.  The HTTP surface has its own suite in ``test_http.py``.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.harness.engine import CampaignEngine, EventKind
from repro.harness.results import record_to_dict
from repro.service import CampaignSpec
from repro.service.registry import (
    STATE_CANCELLED,
    STATE_FINISHED,
    STATE_RUNNING,
    ServiceRegistry,
)
from repro.service.scheduler import CampaignScheduler

BENCHES = ("polybench.gemm", "polybench.symm")
VARIANTS = ("GNU", "FJtrad")
RUNS = 3


def spec(tenant: str, benches=BENCHES) -> CampaignSpec:
    return CampaignSpec(
        tenant=tenant, benchmarks=tuple(benches), variants=VARIANTS,
        runs=RUNS,
    )


def run(coro):
    return asyncio.run(coro)


async def finished(*campaigns):
    await asyncio.gather(*(c.task for c in campaigns))


def records_of(campaign) -> dict:
    return {name: record_to_dict(rec) for name, rec in campaign.done.items()}


class TestDedupe:
    def test_concurrent_overlapping_campaigns_share_execution(self, tmp_path):
        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            # alice and bob overlap on BENCHES[0]; bob adds BENCHES[1].
            alice = sched.submit(spec("alice", benches=BENCHES[:1]))
            bob = sched.submit(spec("bob", benches=BENCHES))
            await finished(alice, bob)
            return sched, alice, bob

        sched, alice, bob = run(main())
        assert alice.state == STATE_FINISHED
        assert bob.state == STATE_FINISHED
        # Each unique cell executed exactly once, service-wide.
        unique_cells = len(BENCHES) * len(VARIANTS)
        assert sched.counters["cells_executed"] == unique_cells
        shared = len(VARIANTS)  # one overlapping benchmark
        assert alice.stats["deduped"] + bob.stats["deduped"] == shared
        assert sched.counters["cells_deduped"] == shared
        # The deduped waiters got the exact records the owner produced.
        alice_recs, bob_recs = records_of(alice), records_of(bob)
        for name in alice_recs:
            assert bob_recs[name] == alice_recs[name]

    def test_fully_cached_campaign_never_touches_the_pool(self, tmp_path):
        async def first():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("warm"))
            await finished(c)
            return sched

        run(first())

        async def second():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("cold"))
            await finished(c)
            return sched, c

        sched, c = run(second())
        assert c.state == STATE_FINISHED
        assert c.stats["cache_hits"] == c.total
        assert sched.counters["cells_executed"] == 0
        assert sched.counters["kernel_batches"] == 0
        assert not sched.pool_created

    def test_waiter_fans_in_on_slow_shared_cell(self, tmp_path, monkeypatch):
        import repro.service.scheduler as mod

        real = mod._run_chunk
        started = []

        def slow_chunk(payload):
            started.append(time.monotonic())
            time.sleep(0.3)
            return real(payload)

        monkeypatch.setattr(mod, "_run_chunk", slow_chunk)

        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            alice = sched.submit(spec("alice", benches=BENCHES[:1]))
            # Give alice's scan a tick so she owns the in-flight cells,
            # then submit bob mid-execution: he must fan in, not re-run.
            await asyncio.sleep(0.05)
            bob = sched.submit(spec("bob", benches=BENCHES[:1]))
            await finished(alice, bob)
            return sched, alice, bob

        sched, alice, bob = run(main())
        assert alice.stats["executed"] == alice.total
        assert bob.stats["deduped"] == bob.total
        assert sched.counters["cells_executed"] == alice.total
        assert len(started) == 1  # one benchmark-major batch, once


class TestCancellation:
    def test_cancel_mid_campaign_stops_and_persists(self, tmp_path, monkeypatch):
        import repro.service.scheduler as mod

        real = mod._run_chunk
        monkeypatch.setattr(
            mod, "_run_chunk",
            lambda payload: (time.sleep(0.3), real(payload))[1],
        )

        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("alice"))
            await asyncio.sleep(0.05)
            sched.cancel(c.id)
            await finished(c)
            return sched, c

        sched, c = run(main())
        assert c.state == STATE_CANCELLED
        assert c.completed < c.total
        entry = ServiceRegistry(
            tmp_path / "service" / "campaigns.json").load()[c.id]
        assert entry["state"] == STATE_CANCELLED
        # Terminal event closed the stream.
        assert c.events[-1]["kind"] == "campaign-cancelled"

    def test_waiters_reclaim_cells_an_owner_abandoned(
        self, tmp_path, monkeypatch
    ):
        import repro.service.scheduler as mod

        real = mod._run_chunk
        monkeypatch.setattr(
            mod, "_run_chunk",
            lambda payload: (time.sleep(0.25), real(payload))[1],
        )

        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            alice = sched.submit(spec("alice", benches=BENCHES[:1]))
            await asyncio.sleep(0.05)
            bob = sched.submit(spec("bob", benches=BENCHES[:1]))
            await asyncio.sleep(0.05)
            # alice abandons; her first batch is already running on a
            # thread (uncancellable), but bob must not be stranded
            # regardless of which cells were still queued.
            sched.cancel(alice.id)
            await finished(alice, bob)
            return sched, alice, bob

        sched, alice, bob = run(main())
        assert alice.state == STATE_CANCELLED
        assert bob.state == STATE_FINISHED
        assert bob.completed == bob.total

    def test_cancel_is_idempotent_and_unknown_id_raises(self, tmp_path):
        from repro.service import ServiceError

        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("alice", benches=BENCHES[:1]))
            await finished(c)
            assert sched.cancel(c.id).state == STATE_FINISHED  # no-op
            with pytest.raises(ServiceError):
                sched.get("c9999-nope")
            return c

        assert run(main()).state == STATE_FINISHED


class TestRestartResume:
    def test_killed_service_resumes_from_journal(self, tmp_path, monkeypatch):
        import repro.service.scheduler as mod

        real = mod._run_chunk

        def uneven_chunk(payload):
            items = payload[6]
            # First benchmark's batch lands fast; the second is still
            # in flight when the kill arrives.
            slow = any(b.full_name.endswith("symm") for _i, b, _v in items)
            time.sleep(1.0 if slow else 0.05)
            return real(payload)

        monkeypatch.setattr(mod, "_run_chunk", uneven_chunk)

        async def first_life():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("alice"))
            # Let the first benchmark's batch land, then die abruptly —
            # asyncio task cancellation is the in-process stand-in for
            # SIGKILL: no graceful _finish, registry stays "running".
            while c.completed == 0:
                await asyncio.sleep(0.02)
            c.task.cancel()
            await asyncio.gather(c.task, return_exceptions=True)
            return c.id, c.completed

        cid, completed_before = run(first_life())
        assert 0 < completed_before
        registry = ServiceRegistry(tmp_path / "service" / "campaigns.json")
        assert registry.load()[cid]["state"] == STATE_RUNNING

        monkeypatch.setattr(mod, "_run_chunk", real)

        async def second_life():
            sched = CampaignScheduler(tmp_path, workers=0)
            resumed = sched.resume_pending()
            assert [c.id for c in resumed] == [cid]
            await finished(*resumed)
            return sched, resumed[0]

        sched, c = run(second_life())
        assert c.state == STATE_FINISHED
        assert c.completed == c.total
        # The journaled cells were replayed, not re-executed.
        assert c.stats["resumed"] >= completed_before
        result = json.loads((c.dir / "result.json").read_text())
        assert len(result["records"]) == c.total

    def test_new_ids_do_not_collide_with_resumed_ones(self, tmp_path):
        async def first():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("alice", benches=BENCHES[:1]))
            await finished(c)
            # Pretend the service died mid-campaign.
            entry = sched.registry.load()[c.id]
            sched.registry.upsert(c.id, {**entry, "state": STATE_RUNNING})
            return c.id

        cid = run(first())

        async def second():
            sched = CampaignScheduler(tmp_path, workers=0)
            resumed = sched.resume_pending()
            fresh = sched.submit(spec("bob", benches=BENCHES[:1]))
            await finished(*resumed, fresh)
            return resumed[0], fresh

        resumed, fresh = run(second())
        assert resumed.id == cid
        assert fresh.id != cid
        # Fully-journaled campaign resumed without executing anything.
        assert resumed.stats["resumed"] == resumed.total


class TestEventOrder:
    def test_service_event_order_matches_serial_engine(self, tmp_path):
        engine_events = []
        engine = CampaignEngine(
            benchmarks=_benchmarks(BENCHES),
            variants=VARIANTS,
            runs=RUNS,
        )
        engine_result = engine.run(engine_events.append)
        engine_order = [
            (e.kind.value, e.benchmark, e.variant)
            for e in engine_events
            if e.kind in (EventKind.CELL_FINISHED, EventKind.CELL_FAILED,
                          EventKind.CELL_TIMED_OUT, EventKind.CACHE_HIT)
        ]

        async def main():
            sched = CampaignScheduler(tmp_path, workers=0)
            c = sched.submit(spec("alice"))
            await finished(c)
            return c

        c = run(main())
        service_order = [
            (e["kind"], e.get("benchmark"), e.get("variant"))
            for e in c.events
            if e["kind"] in ("cell-finished", "cell-failed",
                             "cell-timed-out", "cache-hit")
        ]
        assert service_order == engine_order
        # And the payloads are the records the serial engine produced.
        for (bench, variant), record in engine_result.records.items():
            assert record_to_dict(c.done[(bench, variant)]) == \
                record_to_dict(record)


def _benchmarks(names):
    from repro.suites.registry import get_benchmark

    return [get_benchmark(name) for name in names]
