"""The HTTP surface: routes, SSE streaming, and 4xx discipline.

One module-scoped service instance (``workers=0``) serves most tests;
requests go through real sockets via :mod:`http.client` so the parsing
path — request line, headers, body limits — is the one clients hit.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.service import CampaignService
from repro.telemetry.promexport import validate_exposition

SPEC = {
    "tenant": "alice",
    "benchmarks": ["polybench.gemm"],
    "variants": ["GNU", "FJtrad"],
    "runs": 2,
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = CampaignService(
        tmp_path_factory.mktemp("service-http"), workers=0
    ).start()
    yield svc
    svc.stop(graceful=False)


def request(service, method, path, body=None, raw_body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
    try:
        payload = raw_body
        if body is not None:
            payload = json.dumps(body).encode()
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        text = resp.read().decode()
        try:
            return resp.status, json.loads(text)
        except ValueError:
            return resp.status, text
    finally:
        conn.close()


def wait_terminal(service, cid, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = request(service, "GET", f"/campaigns/{cid}")
        assert status == 200
        if doc["state"] in ("finished", "failed", "cancelled"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"campaign {cid} never reached a terminal state")


class TestHappyPath:
    def test_submit_poll_result_events(self, service):
        status, doc = request(service, "POST", "/campaigns", body=SPEC)
        assert status == 202
        assert doc["total"] == 2
        cid = doc["id"]
        final = wait_terminal(service, cid)
        assert final["state"] == "finished"
        assert final["stats"]["failures"] == 0

        status, result = request(service, "GET", f"/campaigns/{cid}/result")
        assert status == 200
        assert len(result["records"]) == 2
        assert result["engine"]["tenant"] == "alice"
        assert result["engine"]["service"] is True

        # SSE: history replays in order, stream closes after terminal.
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=30)
        conn.request("GET", f"/campaigns/{cid}/events")
        resp = conn.getresponse()
        assert resp.getheader("Content-Type") == "text/event-stream"
        frames = resp.read().decode()
        conn.close()
        kinds = [line.split(" ", 1)[1] for line in frames.splitlines()
                 if line.startswith("event: ")]
        assert kinds[0] == "campaign-started"
        assert kinds[-2:] == ["campaign-finished", "end"]
        seqs = [int(line.split(" ", 1)[1]) for line in frames.splitlines()
                if line.startswith("id: ")]
        assert seqs == sorted(seqs)

        status, listing = request(service, "GET", "/campaigns")
        assert status == 200
        assert cid in [c["id"] for c in listing["campaigns"]]

    def test_stats_and_metrics(self, service):
        status, stats = request(service, "GET", "/stats")
        assert status == 200
        assert "cells_executed" in stats and "tenants" in stats

        status, text = request(service, "GET", "/metrics")
        assert status == 200
        assert validate_exposition(text) == []
        assert "a64fx_service_cells_executed_total" in text
        assert 'tenant="alice"' in text

        status, doc = request(service, "GET", "/healthz")
        assert status == 200 and doc["ok"] is True

    def test_delete_cancels_idempotently(self, service):
        status, doc = request(service, "POST", "/campaigns", body=SPEC)
        cid = doc["id"]
        status, doc = request(service, "DELETE", f"/campaigns/{cid}")
        assert status == 200
        wait_terminal(service, cid)
        status, again = request(service, "DELETE", f"/campaigns/{cid}")
        assert status == 200  # cancelling a settled campaign is a no-op


class TestClientErrors:
    @pytest.mark.parametrize(
        "body",
        [
            b"this is not json",
            b"[1, 2",
            b"\xff\xfe garbage",
        ],
    )
    def test_unparseable_bodies_are_400(self, service, body):
        status, doc = request(service, "POST", "/campaigns", raw_body=body,
                              headers={"Content-Length": str(len(body))})
        assert status == 400
        assert "error" in doc

    @pytest.mark.parametrize(
        "doc",
        [
            {"bogus": 1},
            {"tenant": ""},
            {"runs": 0},
            {"benchmarks": []},
            {"variants": ["not-a-compiler"]},
            {"benchmarks": ["no.such_bench"]},
            {"suites": ["no_such_suite"]},
            {"machine": "pdp11"},
            ["a", "list"],
        ],
    )
    def test_invalid_submissions_are_400(self, service, doc):
        status, body = request(service, "POST", "/campaigns", body=doc)
        assert status == 400
        assert "error" in body

    def test_unknown_routes_are_404(self, service):
        assert request(service, "GET", "/nope")[0] == 404
        assert request(service, "GET", "/campaigns/zz-unknown")[0] == 404
        assert request(service, "GET",
                       "/campaigns/zz-unknown/events")[0] == 404
        assert request(service, "DELETE", "/campaigns/zz-unknown")[0] == 404

    def test_wrong_methods_are_405(self, service):
        assert request(service, "PUT", "/campaigns")[0] == 405
        assert request(service, "DELETE", "/stats")[0] == 404

    def test_oversized_body_is_413(self, service):
        status, doc = request(
            service, "POST", "/campaigns", raw_body=b"",
            headers={"Content-Length": str(2 << 20)},
        )
        assert status == 413

    def test_result_before_finish_is_404(self, service, tmp_path):
        # A fresh cache dir so the campaign actually has to execute.
        svc = CampaignService(tmp_path / "fresh", workers=0).start()
        try:
            status, doc = request(svc, "POST", "/campaigns", body=SPEC)
            cid = doc["id"]
            status, body = request(svc, "GET", f"/campaigns/{cid}/result")
            # Either still running (404) or already done (200): both are
            # legal; what must never happen is a 5xx or a partial body.
            assert status in (404, 200)
            wait_terminal(svc, cid)
            assert request(svc, "GET", f"/campaigns/{cid}/result")[0] == 200
        finally:
            svc.stop(graceful=False)


class TestServiceLifecycle:
    def test_port_zero_reports_bound_port(self, tmp_path):
        svc = CampaignService(tmp_path, workers=0).start()
        try:
            assert svc.port > 0
            assert request(svc, "GET", "/healthz")[0] == 200
        finally:
            svc.stop(graceful=False)

    def test_two_services_never_collide(self, tmp_path):
        a = CampaignService(tmp_path / "a", workers=0).start()
        b = CampaignService(tmp_path / "b", workers=0).start()
        try:
            assert a.port != b.port
        finally:
            a.stop(graceful=False)
            b.stop(graceful=False)
