"""Submission validation: every malformed document is a clean 400."""

from __future__ import annotations

import pytest

from repro.service import CampaignSpec, ServiceError, spec_from_dict, spec_to_dict


class TestSpecFromDict:
    def test_minimal_document_uses_defaults(self):
        spec = spec_from_dict({})
        assert spec == CampaignSpec()
        assert spec.tenant == "default"
        assert spec.runs == 10

    def test_full_document_round_trips(self):
        doc = {
            "tenant": "alice",
            "machine": "a64fx",
            "benchmarks": ["polybench.gemm"],
            "variants": ["GNU", "FJtrad"],
            "runs": 3,
        }
        spec = spec_from_dict(doc)
        assert spec.tenant == "alice"
        assert spec.variants == ("GNU", "FJtrad")
        round_tripped = spec_to_dict(spec)
        assert round_tripped["benchmarks"] == ["polybench.gemm"]
        assert spec_from_dict(round_tripped | {"suites": None}) == spec

    def test_bare_string_promotes_to_single_element(self):
        spec = spec_from_dict({"benchmarks": "polybench.gemm"})
        assert spec.benchmarks == ("polybench.gemm",)

    @pytest.mark.parametrize(
        "doc",
        [
            "not an object",
            ["not", "an", "object"],
            None,
            {"bogus_field": 1},
            {"tenant": ""},
            {"tenant": 7},
            {"tenant": "x" * 65},
            {"tenant": 'quo"te'},
            {"tenant": "two\nlines"},
            {"machine": 42},
            {"runs": 0},
            {"runs": -1},
            {"runs": True},
            {"runs": "10"},
            {"variants": []},
            {"variants": [1, 2]},
            {"suites": {"a": 1}},
        ],
    )
    def test_malformed_documents_raise(self, doc):
        with pytest.raises(ServiceError):
            spec_from_dict(doc)
