"""Tests for the opaque math-library model."""

import pytest

from repro.errors import SuiteError
from repro.libs import LibraryCall, LibraryKind, library_time_s


class TestLibraryCall:
    def test_blas3_needs_flops(self):
        with pytest.raises(SuiteError):
            LibraryCall(LibraryKind.BLAS3)

    def test_blas12_needs_bytes(self):
        with pytest.raises(SuiteError):
            LibraryCall(LibraryKind.BLAS12, flops=1e9)

    def test_negative_rejected(self):
        with pytest.raises(SuiteError):
            LibraryCall(LibraryKind.BLAS3, flops=-1)


class TestLibraryTime:
    def test_blas3_near_peak(self, a64fx_machine):
        call = LibraryCall(LibraryKind.BLAS3, flops=1e12)
        t = library_time_s(call, a64fx_machine, threads=48, domains=4)
        peak_time = 1e12 / a64fx_machine.peak_dp_flops_node
        assert peak_time < t < 1.5 * peak_time

    def test_blas12_bandwidth_bound(self, a64fx_machine):
        call = LibraryCall(LibraryKind.BLAS12, bytes_moved=1e9)
        t = library_time_s(call, a64fx_machine, threads=48, domains=4)
        best = 1e9 / a64fx_machine.peak_bandwidth_node
        assert t > best

    def test_threads_scale_flop_kinds(self, a64fx_machine):
        call = LibraryCall(LibraryKind.BLAS3, flops=1e12)
        t12 = library_time_s(call, a64fx_machine, threads=12)
        t48 = library_time_s(call, a64fx_machine, threads=48)
        assert t48 == pytest.approx(t12 / 4, rel=0.01)

    def test_work_fraction(self, a64fx_machine):
        call = LibraryCall(LibraryKind.BLAS3, flops=1e12)
        full = library_time_s(call, a64fx_machine, threads=12)
        half = library_time_s(call, a64fx_machine, threads=12, work_fraction=0.5)
        assert half == pytest.approx(full / 2, rel=0.01)

    def test_fft_slower_than_blas3(self, a64fx_machine):
        blas = LibraryCall(LibraryKind.BLAS3, flops=1e12)
        fft = LibraryCall(LibraryKind.FFT, flops=1e12)
        assert library_time_s(fft, a64fx_machine, threads=48) > library_time_s(
            blas, a64fx_machine, threads=48
        )
