"""Tests for search spaces: parameters, configs, grids, sampling."""

import pytest

from repro.errors import HarnessError
from repro.machine import Placement
from repro.suites import get_benchmark, polybench_suite
from repro.tuning import (
    Parameter,
    SearchSpace,
    benchmark_placements,
    placement_space,
    render_value,
)


def small_space():
    return SearchSpace(
        (
            Parameter("mr", (2, 4, 6)),
            Parameter("nr", (1, 2)),
            Parameter("fast", (True, False)),
        )
    )


class TestRenderValue:
    def test_bools_lowercase(self):
        assert render_value(True) == "true"
        assert render_value(False) == "false"

    def test_placement_renders_compactly(self):
        assert render_value(Placement(4, 12)) == "4x12"

    def test_ints_via_str(self):
        assert render_value(256) == "256"


class TestParameter:
    def test_empty_name_rejected(self):
        with pytest.raises(HarnessError):
            Parameter("", (1, 2))

    def test_empty_choices_rejected(self):
        with pytest.raises(HarnessError):
            Parameter("mr", ())

    def test_duplicate_choices_rejected(self):
        # duplicates by *canonical render*, not object identity
        with pytest.raises(HarnessError):
            Parameter("x", (1, "1"))

    def test_index_of(self):
        p = Parameter("mr", (2, 4, 6))
        assert p.index_of(4) == 1
        assert p.index_of_rendered("6") == 2
        with pytest.raises(HarnessError):
            p.index_of(5)


class TestSearchSpace:
    def test_duplicate_param_names_rejected(self):
        with pytest.raises(HarnessError):
            SearchSpace((Parameter("a", (1,)), Parameter("a", (2,))))

    def test_size_is_product(self):
        assert small_space().size == 3 * 2 * 2

    def test_grid_lexicographic_in_axis_order(self):
        grid = small_space().grid()
        assert len(grid) == 12
        assert grid[0].label == "mr=2,nr=1,fast=true"
        assert grid[1].label == "mr=2,nr=1,fast=false"
        assert grid[-1].label == "mr=6,nr=2,fast=false"
        # the first axis varies slowest
        assert [c["mr"] for c in grid] == [2] * 4 + [4] * 4 + [6] * 4

    def test_config_validates_keys_and_values(self):
        space = small_space()
        config = space.config(mr=4, nr=2, fast=True)
        assert config["mr"] == 4 and config["fast"] is True
        with pytest.raises(HarnessError):
            space.config(mr=4, nr=2)  # missing key
        with pytest.raises(HarnessError):
            space.config(mr=5, nr=2, fast=True)  # not a choice

    def test_sample_deterministic_and_distinct(self):
        space = small_space()
        a = space.sample(5, seed=7)
        b = space.sample(5, seed=7)
        assert a == b
        assert len(set(c.label for c in a)) == 5
        assert space.sample(5, seed=8) != a

    def test_sample_covers_grid_when_n_large(self):
        space = small_space()
        assert set(space.sample(100, seed=0)) == set(space.grid())

    def test_sample_size_validated(self):
        with pytest.raises(HarnessError):
            small_space().sample(0, seed=0)

    def test_config_from_label_round_trip(self):
        space = small_space()
        for config in space.grid():
            assert space.config_from_label(config.label) == config

    def test_config_from_label_rejects_mismatches(self):
        space = small_space()
        with pytest.raises(HarnessError):
            space.config_from_label("mr=2,nr=1")  # missing field
        with pytest.raises(HarnessError):
            space.config_from_label("nr=1,mr=2,fast=true")  # wrong order

    def test_fingerprint_tracks_choices(self):
        a = SearchSpace((Parameter("mr", (2, 4)),))
        b = SearchSpace((Parameter("mr", (2, 6)),))
        c = SearchSpace((Parameter("nr", (2, 4)),))
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert a.fingerprint == SearchSpace((Parameter("mr", (2, 4)),)).fingerprint

    def test_digest_is_stable_content_hash(self):
        config = small_space().config(mr=2, nr=1, fast=True)
        assert config.digest == small_space().config(mr=2, nr=1, fast=True).digest
        assert len(config.digest) == 16


class TestPlacementSpace:
    def test_preserves_candidate_order(self, a64fx_machine):
        bench = get_benchmark("ecp.amg")
        cands = benchmark_placements(bench, a64fx_machine)
        space = placement_space(bench=bench, machine=a64fx_machine)
        assert tuple(c["placement"] for c in space.grid()) == cands

    def test_explicit_placements(self):
        placements = (Placement(1, 1), Placement(4, 12))
        space = placement_space(placements)
        assert space.names == ("placement",)
        assert space.size == 2
        assert space.grid()[0]["placement"] == Placement(1, 1)

    def test_needs_placements_or_bench(self):
        with pytest.raises(HarnessError):
            placement_space()

    def test_pinned_bench_single_candidate(self, a64fx_machine):
        bench = polybench_suite().get("mvt")
        space = placement_space(bench=bench, machine=a64fx_machine)
        assert space.size == 1
        assert space.grid()[0]["placement"] == Placement(1, 1)

    def test_label_round_trip_with_placements(self, a64fx_machine):
        bench = get_benchmark("ecp.amg")
        space = placement_space(bench=bench, machine=a64fx_machine)
        for config in space.grid():
            assert space.config_from_label(config.label) == config
