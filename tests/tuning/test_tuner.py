"""Tests for the tuner: journal resume, caching, sharding, workers."""

from pathlib import Path

import pytest

from repro import telemetry
from repro.machine import Placement
from repro.telemetry import Telemetry
from repro.tuning import (
    Evaluation,
    Parameter,
    Scenario,
    SearchSpace,
    TuneInterrupted,
    TuneResult,
    TuneSpec,
    run_tune,
)


class QuadScenario(Scenario):
    """A tiny deterministic landscape with a unique minimum at (7, 2)."""

    name = "quad-test"
    noise_cv = 0.01

    def space(self, machine):
        return SearchSpace(
            (
                Parameter("x", tuple(range(12))),
                Parameter("y", tuple(range(5))),
            )
        )

    def evaluate(self, configs, machine):
        return tuple(
            Evaluation(
                config=c,
                time_s=1.0 + 0.01 * ((c["x"] - 7) ** 2 + (c["y"] - 2) ** 2),
            )
            for c in configs
        )

    def fingerprint(self, machine):
        return "quad-test-v1"

    def known_best(self, machine):
        return self.space(machine).config(x=7, y=2)


def quad_spec(**kwargs):
    defaults = dict(
        scenario=QuadScenario(),
        strategy="successive-halving",
        trials=3,
        min_trials=1,
        eta=3,
    )
    defaults.update(kwargs)
    return TuneSpec(**defaults)


class TestRediscovery:
    def test_gemm_successive_halving_finds_the_handtuned_tile(self):
        # The headline acceptance: from a cold start the tuner lands on
        # the write-up's 6x4 / kc=256 / 2x-unroll kernel at ~94%.
        result = run_tune(TuneSpec())
        assert result.complete
        assert result.best_label == "mr=6,nr=4,kc=256,unroll=2"
        assert result.rediscovered is True
        assert 0.92 <= result.best_detail["efficiency"] <= 0.96
        # fidelity escalates: first rung cheap, last rung at the cap
        assert result.rungs[0].trials == 1
        assert result.rungs[-1].trials == 3
        assert len(result.rungs) >= 3

    def test_quad_scenario_all_strategies_agree(self):
        grid = run_tune(quad_spec(strategy="grid"))
        sh = run_tune(quad_spec())
        assert grid.best_label == "x=7,y=2" == sh.best_label
        assert grid.rediscovered and sh.rediscovered
        # grid pays full fidelity everywhere; halving spends less
        assert grid.evaluations == 60
        assert sh.evaluations > 60  # counts re-evaluations per rung
        assert sum(r.configs for r in sh.rungs) < 3 * 60


class TestJournal:
    def test_journaled_run_matches_cacheless(self, tmp_path):
        bare = run_tune(quad_spec())
        stored = run_tune(quad_spec(cache_dir=tmp_path))
        assert stored.best_label == bare.best_label
        assert stored.trajectory == bare.trajectory
        assert stored.journal is not None and Path(stored.journal).exists()

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        clean = run_tune(quad_spec(cache_dir=tmp_path / "clean"))
        with pytest.raises(TuneInterrupted):
            run_tune(
                quad_spec(cache_dir=tmp_path / "killed"),
                stop_after_evaluations=13,
            )
        resumed = run_tune(quad_spec(cache_dir=tmp_path / "killed", resume=True))
        assert resumed.complete
        assert resumed.best_label == clean.best_label
        assert resumed.trajectory == clean.trajectory
        assert (
            Path(resumed.journal).read_bytes() == Path(clean.journal).read_bytes()
        )

    def test_replay_of_finished_journal_appends_nothing(self, tmp_path):
        first = run_tune(quad_spec(cache_dir=tmp_path))
        before = Path(first.journal).read_bytes()
        replay = run_tune(quad_spec(cache_dir=tmp_path, resume=True))
        assert replay.complete
        assert replay.evaluations == 0
        assert replay.from_journal > 0
        assert replay.best_label == first.best_label
        assert Path(replay.journal).read_bytes() == before

    def test_fresh_start_discards_stale_journal(self, tmp_path):
        first = run_tune(quad_spec(cache_dir=tmp_path))
        # resume=False must not replay the journal: with the cache dir
        # shared, the cells still satisfy every lookup, so no fresh
        # evaluations — but the journal is rebuilt rather than appended.
        again = run_tune(quad_spec(cache_dir=tmp_path))
        assert again.evaluations == 0
        assert again.from_cache > 0
        assert again.best_label == first.best_label


class TestCache:
    def test_cache_shared_across_strategies(self, tmp_path):
        probe = run_tune(quad_spec(strategy="grid", cache_dir=tmp_path))
        assert probe.from_cache == 0
        # grid evaluated every config at trials=3; the halving run's
        # final full-fidelity rungs hit those entries.
        sh = run_tune(quad_spec(cache_dir=tmp_path))
        assert sh.from_cache > 0
        assert sh.best_label == probe.best_label

    def test_cacheless_spec_keeps_no_state(self):
        result = run_tune(quad_spec())
        assert result.journal is None
        assert result.from_cache == 0


class TestSharding:
    def test_two_shards_converge_by_ping_pong(self, tmp_path):
        reference = run_tune(quad_spec())
        shared = tmp_path / "shards"
        result = run_tune(quad_spec(cache_dir=shared, shard=(1, 2)))
        assert not result.complete
        assert result.meta["waiting"]
        # Alternate shards against the shared directory; each pass
        # clears one rung barrier using the sibling's journal.
        for attempt in range(20):
            shard = (2, 1)[attempt % 2], 2
            result = run_tune(
                quad_spec(cache_dir=shared, shard=shard, resume=True)
            )
            if result.complete:
                break
        assert result.complete
        assert result.best_label == reference.best_label
        assert result.trajectory == reference.trajectory

    def test_shard_validation(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            run_tune(quad_spec(shard=(3, 2)))


class TestWorkers:
    def test_parallel_matches_serial(self, tmp_path):
        serial = run_tune(
            TuneSpec(strategy="random", samples=24, trials=2, seed=5)
        )
        parallel = run_tune(
            TuneSpec(strategy="random", samples=24, trials=2, seed=5, workers=2)
        )
        assert parallel.best_label == serial.best_label
        assert parallel.trajectory == serial.trajectory


class TestPlacementScenarios:
    def test_pinned_benchmark_space_is_single_core_only(self):
        result = run_tune(
            TuneSpec(scenario="placement:polybench.gemm:GNU", strategy="grid")
        )
        assert result.complete
        assert result.best_label == "placement=1x1"
        assert result.meta["space_size"] == 1

    def test_openmp_benchmark_grid(self, a64fx_machine):
        result = run_tune(
            TuneSpec(scenario="placement:ecp.nekbone:GNU", strategy="grid")
        )
        assert result.complete
        label = result.best_label
        assert label.startswith("placement=")
        ranks, threads = label.removeprefix("placement=").split("x")
        assert Placement(int(ranks), int(threads)).fits(a64fx_machine.topology)
        assert result.evaluations > 1


class TestTelemetry:
    def test_spans_and_counters(self):
        tel = Telemetry()
        with telemetry.active(tel):
            run_tune(quad_spec())
        names = [s.name for s in tel.spans]
        assert "tune" in names
        assert names.count("tune.rung") >= 3
        assert tel.metrics.counter_value("tuner.evaluations") > 0
        assert tel.metrics.counter_value("tuner.rungs") >= 3


class TestTuneResult:
    def test_json_round_trip(self, tmp_path):
        result = run_tune(quad_spec(cache_dir=tmp_path))
        loaded = TuneResult.from_json(result.to_json())
        assert loaded == result

    def test_rediscovered_none_without_known_best(self):
        class Anon(QuadScenario):
            name = "quad-anon"

            def known_best(self, machine):
                return None

        result = run_tune(quad_spec(scenario=Anon()))
        assert result.known_best_label is None
        assert result.rediscovered is None
