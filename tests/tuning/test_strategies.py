"""Tests for the search strategies: grid, random, successive halving."""

import math

import pytest

from repro.errors import HarnessError
from repro.perf.noise import noise_multiplier
from repro.tuning import (
    Candidate,
    GridStrategy,
    Parameter,
    RandomStrategy,
    SearchSpace,
    SuccessiveHalvingStrategy,
    fastest_of,
    make_strategy,
    select_best,
)


def toy_space(n=6):
    return SearchSpace((Parameter("x", tuple(range(n))),))


def drive(strategy, space, score_fn):
    """Run a strategy generator to completion; returns (winner, batches)."""
    gen = strategy.run(space)
    batches = []
    batch = next(gen)
    while True:
        batches.append(batch)
        scores = tuple(score_fn(c) for c in batch)
        try:
            batch = gen.send(scores)
        except StopIteration as stop:
            return stop.value, batches


class TestFastestOf:
    def test_matches_exploration_arithmetic(self):
        # bit-identical to the historical best-of-three inline loop
        time_s, cv = 0.123, 0.05
        key = ("explore", "s.b", "GNU", "4x12")
        expected = min(
            time_s * noise_multiplier(cv, *key, trial) for trial in range(3)
        )
        assert fastest_of(time_s, cv, 3, *key) == expected

    def test_monotone_in_trials(self):
        # trial indices start at 0, so more trials extend the sample set
        scores = [fastest_of(1.0, 0.1, t, "k") for t in range(1, 8)]
        assert scores == sorted(scores, reverse=True) or all(
            b <= a for a, b in zip(scores, scores[1:])
        )

    def test_zero_cv_is_ideal_time(self):
        assert fastest_of(2.5, 0.0, 3, "k") == 2.5


class TestSelectBest:
    def test_first_wins_on_ties(self):
        assert select_best(("a", "b", "c"), (1.0, 1.0, 1.0)) == 0

    def test_strict_improvement_required(self):
        assert select_best(("a", "b", "c"), (2.0, 1.0, 1.0)) == 1

    def test_all_inf_falls_back_to_first(self):
        inf = float("inf")
        assert select_best(("a", "b"), (inf, inf)) == 0


class TestGridStrategy:
    def test_sweeps_grid_in_order_once(self):
        space = toy_space()
        winner, batches = drive(GridStrategy(trials=3), space, lambda c: c.config["x"])
        assert len(batches) == 1
        assert tuple(c.config for c in batches[0]) == space.grid()
        assert all(c.trials == 3 for c in batches[0])
        assert winner.config["x"] == 0

    def test_trials_validated(self):
        with pytest.raises(HarnessError):
            GridStrategy(trials=0)


class TestRandomStrategy:
    def test_proposes_seeded_subset(self):
        space = toy_space(20)
        w1, b1 = drive(RandomStrategy(5, seed=3), space, lambda c: c.config["x"])
        w2, b2 = drive(RandomStrategy(5, seed=3), space, lambda c: c.config["x"])
        assert b1 == b2 and w1 == w2
        assert len(b1[0]) == 5

    def test_seed_changes_subset(self):
        space = toy_space(20)
        _, b1 = drive(RandomStrategy(5, seed=0), space, lambda c: c.config["x"])
        _, b2 = drive(RandomStrategy(5, seed=1), space, lambda c: c.config["x"])
        assert b1 != b2

    def test_validation(self):
        with pytest.raises(HarnessError):
            RandomStrategy(0)
        with pytest.raises(HarnessError):
            RandomStrategy(3, trials=0)


class TestSuccessiveHalving:
    def test_rung_zero_is_full_grid_by_default(self):
        space = toy_space(9)
        _, batches = drive(
            SuccessiveHalvingStrategy(eta=3, min_trials=1, max_trials=9),
            space,
            lambda c: c.config["x"],
        )
        assert len(batches[0]) == 9
        assert all(c.trials == 1 and c.rung == 0 for c in batches[0])

    def test_keep_and_escalation_schedule(self):
        space = toy_space(9)
        _, batches = drive(
            SuccessiveHalvingStrategy(eta=3, min_trials=1, max_trials=9),
            space,
            lambda c: c.config["x"],
        )
        sizes = [len(b) for b in batches]
        trials = [b[0].trials for b in batches]
        assert sizes == [9, 3, 1]
        assert trials == [1, 3, 9]
        # every rung keeps ceil(n / eta)
        for a, b in zip(sizes, sizes[1:]):
            assert b == max(1, math.ceil(a / 3))

    def test_survivors_are_best_scores_stable_order(self):
        space = toy_space(6)
        scores = {0: 5.0, 1: 1.0, 2: 1.0, 3: 0.5, 4: 9.0, 5: 1.0}
        _, batches = drive(
            SuccessiveHalvingStrategy(eta=3, min_trials=1, max_trials=3),
            space,
            lambda c: scores[c.config["x"]],
        )
        # keep 2 of 6: best score first, then the earliest of the 1.0 tie
        assert [c.config["x"] for c in batches[1]] == [3, 1]

    def test_winner_is_final_rung_best(self):
        space = toy_space(9)
        winner, _ = drive(
            SuccessiveHalvingStrategy(eta=3, min_trials=1, max_trials=9),
            space,
            lambda c: abs(c.config["x"] - 4),
        )
        assert winner.config["x"] == 4

    def test_trials_capped_at_max(self):
        space = toy_space(30)
        _, batches = drive(
            SuccessiveHalvingStrategy(eta=3, min_trials=2, max_trials=5),
            space,
            lambda c: c.config["x"],
        )
        assert max(b[0].trials for b in batches) == 5

    def test_seeded_initial_population(self):
        space = toy_space(30)
        strat = SuccessiveHalvingStrategy(initial=6, seed=1, eta=3)
        _, batches = drive(strat, space, lambda c: c.config["x"])
        assert len(batches[0]) == 6
        assert tuple(c.config for c in batches[0]) == space.sample(6, seed=1)

    def test_score_count_mismatch_rejected(self):
        gen = SuccessiveHalvingStrategy().run(toy_space(4))
        next(gen)
        with pytest.raises(HarnessError):
            gen.send((1.0,))

    def test_validation(self):
        with pytest.raises(HarnessError):
            SuccessiveHalvingStrategy(eta=1)
        with pytest.raises(HarnessError):
            SuccessiveHalvingStrategy(initial=1)
        with pytest.raises(HarnessError):
            SuccessiveHalvingStrategy(min_trials=3, max_trials=2)


class TestMakeStrategy:
    def test_builds_each_kind(self):
        assert make_strategy("grid", trials=5).describe() == "grid(trials=5)"
        assert "samples=4" in make_strategy("random", samples=4).describe()
        sh = make_strategy("successive-halving", trials=3, min_trials=1)
        assert isinstance(sh, SuccessiveHalvingStrategy)
        assert sh.max_trials == 3

    def test_random_needs_samples(self):
        with pytest.raises(HarnessError):
            make_strategy("random")

    def test_unknown_rejected(self):
        with pytest.raises(HarnessError):
            make_strategy("simulated-annealing")


class TestCandidate:
    def test_name_carries_fidelity(self):
        space = toy_space()
        cand = Candidate(space.grid()[2], trials=3, rung=1)
        assert cand.name == "x=2@t3"
