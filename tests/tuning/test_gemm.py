"""Tests for the INT8 SDOT GEMM scenario: the landscape the tuner must
rediscover (SNIPPETS Snippet 1's hand-tuned 6x4 kernel)."""

import math

import pytest

from repro.tuning import Int8SdotGemmScenario, get_scenario, scenario_names


@pytest.fixture(scope="module")
def scenario():
    return Int8SdotGemmScenario()


@pytest.fixture(scope="module")
def space(scenario, a64fx_machine):
    return scenario.space(a64fx_machine)


class TestRegistration:
    def test_registered_by_name(self):
        assert "gemm-int8-sdot" in scenario_names()
        assert isinstance(get_scenario("gemm-int8-sdot"), Int8SdotGemmScenario)


class TestLandscape:
    def test_grid_size(self, space):
        assert space.size == 7 * 6 * 5 * 3 == 630

    def test_known_best_is_the_grid_argmax(self, scenario, space, a64fx_machine):
        best = max(space.grid(), key=scenario.efficiency)
        assert best == scenario.known_best(a64fx_machine)
        assert best.label == "mr=6,nr=4,kc=256,unroll=2"

    def test_peak_efficiency_matches_the_writeup(self, scenario, a64fx_machine):
        # the shipped kernel averages 94.9% (22.7 of 24 SDOT/cycle)
        eff = scenario.efficiency(scenario.known_best(a64fx_machine))
        assert 0.92 <= eff <= 0.96
        assert eff * 24 == pytest.approx(22.7, abs=0.3)

    def test_runner_up_within_a_percent(self, scenario, space, a64fx_machine):
        # near-ties at the top are what successive halving's fidelity
        # escalation exists for
        effs = sorted((scenario.efficiency(c) for c in space.grid()), reverse=True)
        gap = (effs[0] - effs[1]) / effs[0]
        assert 0.001 < gap < 0.01

    def test_spilled_tiles_collapse(self, scenario, space):
        # 8x6: 48 accumulators + 8 A + 3 B = 59 regs, far past the 32 file
        spilled = space.config(mr=8, nr=6, kc=256, unroll=2)
        fits = space.config(mr=6, nr=4, kc=256, unroll=2)
        assert scenario.efficiency(spilled) < 0.3 * scenario.efficiency(fits)

    def test_l2_overflow_penalized(self, scenario, space):
        # kc=1024 puts the 24 KiB/k B panel past the 7 MiB L2 budget
        deep = space.config(mr=6, nr=4, kc=1024, unroll=2)
        best = space.config(mr=6, nr=4, kc=256, unroll=2)
        assert scenario.efficiency(deep) < scenario.efficiency(best)

    def test_over_unrolling_pays_fetch(self, scenario, space):
        u2 = space.config(mr=6, nr=4, kc=256, unroll=2)
        u4 = space.config(mr=6, nr=4, kc=256, unroll=4)
        assert scenario.efficiency(u4) < scenario.efficiency(u2)

    def test_time_inverse_to_efficiency(self, scenario, space):
        a = space.config(mr=6, nr=4, kc=256, unroll=2)
        b = space.config(mr=2, nr=1, kc=64, unroll=1)
        assert scenario.time_s(a) < scenario.time_s(b)
        assert scenario.time_s(a) > 0

    def test_efficiencies_are_fractions(self, scenario, space):
        for config in space.grid():
            assert 0.0 < scenario.efficiency(config) <= 1.0


class TestEvaluate:
    def test_batch_order_and_detail(self, scenario, space, a64fx_machine):
        configs = space.grid()[:5]
        evals = scenario.evaluate(configs, a64fx_machine)
        assert tuple(e.config for e in evals) == configs
        for e in evals:
            assert e.valid
            assert e.detail["sdot_per_cycle"] == pytest.approx(
                e.detail["efficiency"] * 24
            )
            assert e.time_s == pytest.approx(scenario.time_s(e.config))

    def test_fingerprint_stable(self, scenario, a64fx_machine):
        assert scenario.fingerprint(a64fx_machine) == scenario.fingerprint(
            a64fx_machine
        )
