"""Tests for cache descriptors and the trace-based LRU simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineConfigError
from repro.machine import CacheHierarchy, CacheLevel, SetAssociativeCache
from repro.units import KiB


def small_cache(capacity=1 * KiB, line=64, ways=2):
    return CacheLevel(
        name="t",
        capacity_bytes=capacity,
        line_bytes=line,
        associativity=ways,
        latency_cycles=4,
        bytes_per_cycle_per_core=64,
    )


class TestCacheLevel:
    def test_geometry(self):
        lvl = small_cache()
        assert lvl.num_lines == 16
        assert lvl.num_sets == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(MachineConfigError):
            small_cache(capacity=1000)  # not multiple of line
        with pytest.raises(MachineConfigError):
            small_cache(ways=3)  # 16 lines not divisible by 3

    def test_effective_capacity_private(self):
        lvl = small_cache()
        assert lvl.effective_capacity(12) == lvl.capacity_bytes

    def test_effective_capacity_shared(self):
        lvl = CacheLevel("L2", 8 * KiB, 64, 4, 40, 64, shared_by_cores=4)
        assert lvl.effective_capacity(1) == 8 * KiB
        assert lvl.effective_capacity(2) == 4 * KiB
        assert lvl.effective_capacity(100) == 2 * KiB


class TestLRUSimulator:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(small_cache())
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction(self):
        # 2-way sets; three lines mapping to the same set evict the LRU.
        c = SetAssociativeCache(small_cache())
        sets = c.level.num_sets
        stride = sets * 64  # same set index each time
        c.access(0 * stride)
        c.access(1 * stride)
        c.access(0 * stride)  # refresh line 0
        c.access(2 * stride)  # evicts line 1 (LRU)
        assert c.access(0 * stride)
        assert not c.access(1 * stride)
        assert c.stats.evictions >= 1

    def test_stats_accounting(self):
        c = SetAssociativeCache(small_cache())
        for _ in range(3):
            c.access(128)
        assert c.stats.accesses == 3
        assert c.stats.hits == 2
        assert c.stats.misses == 1
        assert c.stats.hit_rate == pytest.approx(2 / 3)

    def test_access_range_counts_line_misses(self):
        c = SetAssociativeCache(small_cache())
        assert c.access_range(0, 256) == 4  # four 64B lines
        assert c.access_range(0, 256) == 0

    def test_contains_non_mutating(self):
        c = SetAssociativeCache(small_cache())
        c.access(0)
        before = c.stats.accesses
        assert c.contains(32)
        assert c.stats.accesses == before

    def test_flush(self):
        c = SetAssociativeCache(small_cache())
        c.access(0)
        c.flush()
        assert not c.contains(0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(small_cache()).access(-1)

    def test_streaming_larger_than_cache_all_miss(self):
        c = SetAssociativeCache(small_cache())
        n_lines = 4 * c.level.num_lines
        for i in range(n_lines):
            assert not c.access(i * 64)

    def test_working_set_fitting_all_hits_second_pass(self):
        c = SetAssociativeCache(small_cache())
        lines = c.level.num_lines // 2  # comfortably fits
        for i in range(lines):
            c.access(i * 64)
        for i in range(lines):
            assert c.access(i * 64)

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        c = SetAssociativeCache(small_cache())
        for a in addresses:
            c.access(a)
        assert c.stats.hits + c.stats.misses == c.stats.accesses

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=100))
    def test_immediate_repeat_always_hits(self, addresses):
        c = SetAssociativeCache(small_cache())
        for a in addresses:
            c.access(a)
            assert c.access(a)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=150))
    def test_occupancy_never_exceeds_geometry(self, addresses):
        c = SetAssociativeCache(small_cache())
        for a in addresses:
            c.access(a)
        for ways in c._sets:
            assert len(ways) <= c.level.associativity


class TestHierarchy:
    def _hier(self):
        l1 = small_cache(capacity=512, ways=2)
        l2 = small_cache(capacity=4 * KiB, ways=4)
        return CacheHierarchy([l1, l2])

    def test_miss_cascades(self):
        h = self._hier()
        assert h.access(0) == 2  # memory
        assert h.access(0) == 0  # L1

    def test_l2_catches_l1_evictions(self):
        h = self._hier()
        l1_lines = h.caches[0].level.num_lines
        # touch 2x L1 capacity (fits L2)
        for i in range(2 * l1_lines):
            h.access(i * 64)
        # the first lines were evicted from L1 but still sit in L2
        level = h.access(0)
        assert level == 1

    def test_rejects_shrinking_hierarchy(self):
        with pytest.raises(MachineConfigError):
            CacheHierarchy([small_cache(capacity=4 * KiB, ways=4), small_cache(capacity=512)])

    def test_rejects_mixed_line_sizes(self):
        with pytest.raises(MachineConfigError):
            CacheHierarchy([small_cache(), small_cache(capacity=4 * KiB, line=128, ways=4)])

    def test_flush(self):
        h = self._hier()
        h.access(0)
        h.flush()
        assert h.access(0) == 2
