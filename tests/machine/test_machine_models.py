"""Tests for ISAs, memory systems, topology/placement, and the A64FX and
Xeon node definitions (datasheet invariants)."""

import pytest

from repro.errors import MachineConfigError, PlacementError
from repro.machine import (
    AVX512,
    NEON,
    SCALAR,
    SVE512,
    MemorySystem,
    Placement,
    Topology,
    VectorISA,
    a64fx,
    candidate_placements,
    isa_by_name,
    xeon,
)
from repro.ir import DType
from repro.units import gb_per_s


class TestISA:
    def test_lanes(self):
        assert SVE512.lanes(DType.F64) == 8
        assert SVE512.lanes(DType.F32) == 16
        assert NEON.lanes(DType.F64) == 2
        assert SCALAR.lanes(DType.F64) == 1

    def test_lanes_at_least_one(self):
        assert SCALAR.lanes(DType.I8) >= 1

    def test_lookup(self):
        assert isa_by_name("sve512") is SVE512
        with pytest.raises(MachineConfigError):
            isa_by_name("mmx")

    def test_bad_width_rejected(self):
        with pytest.raises(MachineConfigError):
            VectorISA("odd", 100, False, False, False)

    def test_feature_flags(self):
        assert SVE512.has_predication and SVE512.has_gather and SVE512.has_scatter
        assert not NEON.has_gather


class TestMemorySystem:
    def _mem(self):
        return MemorySystem("m", gb_per_s(256), 0.8, 130e-9, cores_to_half_saturation=3.0)

    def test_sustained(self):
        assert self._mem().sustained_bandwidth == pytest.approx(gb_per_s(256) * 0.8)

    def test_saturation_monotone(self):
        m = self._mem()
        bws = [m.bandwidth(c) for c in range(1, 13)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
        assert bws[-1] <= m.sustained_bandwidth

    def test_single_core_below_sustained(self):
        m = self._mem()
        assert m.bandwidth(1) < 0.5 * m.sustained_bandwidth

    def test_validation(self):
        with pytest.raises(MachineConfigError):
            MemorySystem("m", -1, 0.8, 1e-7)
        with pytest.raises(MachineConfigError):
            MemorySystem("m", 1e9, 1.5, 1e-7)

    def test_latency_bound_rate_uses_machine_line_size(self):
        # Little's law: rate = concurrency * line / latency.  The line
        # size is the machine model's (256 B on A64FX), not a constant.
        m = self._mem()
        assert m.latency_bound_rate(8.0, 256) == 8.0 * 256 / 130e-9
        assert m.latency_bound_rate(8.0, 64) == 8.0 * 64 / 130e-9
        a64 = a64fx()
        assert a64.line_bytes == 256
        assert a64.memory.latency_bound_rate(10.0, a64.line_bytes) == pytest.approx(
            10.0 * 256 / a64.memory.latency
        )

    def test_latency_bound_rate_latency_override(self):
        m = self._mem()
        assert m.latency_bound_rate(4.0, 256, latency=260e-9) == 4.0 * 256 / 260e-9

    def test_latency_bound_rate_validation(self):
        m = self._mem()
        with pytest.raises(MachineConfigError):
            m.latency_bound_rate(0, 256)
        with pytest.raises(MachineConfigError):
            m.latency_bound_rate(4.0, 0)


class TestPlacement:
    def _topo(self):
        return Topology("t", numa_domains=4, cores_per_domain=12)

    def test_fits(self):
        assert Placement(4, 12).fits(self._topo())
        assert not Placement(4, 13).fits(self._topo())

    def test_validate_raises(self):
        with pytest.raises(PlacementError):
            Placement(48, 2).validate(self._topo())

    def test_domains_used(self):
        topo = self._topo()
        assert Placement(4, 12).domains_used(topo) == 4
        assert Placement(1, 12).domains_used(topo) == 1
        assert Placement(1, 48).domains_used(topo) == 4
        assert Placement(2, 12).domains_used(topo) == 2
        assert Placement(8, 6).domains_used(topo) == 4

    def test_spans_domains(self):
        topo = self._topo()
        assert Placement(1, 48).spans_domains(topo)
        assert not Placement(4, 12).spans_domains(topo)

    def test_active_cores_per_domain(self):
        topo = self._topo()
        assert Placement(4, 12).active_cores_per_domain(topo) == 12
        assert Placement(4, 6).active_cores_per_domain(topo) == 6

    def test_candidates_fit_and_unique(self):
        topo = self._topo()
        cands = candidate_placements(topo)
        assert len(set((p.ranks, p.threads) for p in cands)) == len(cands)
        for p in cands:
            assert p.fits(topo)

    def test_candidates_include_recommended(self):
        cands = candidate_placements(self._topo())
        assert any(p.ranks == 4 and p.threads == 12 for p in cands)

    def test_pow2_filter(self):
        topo = Topology("t", 3, 10)
        cands = candidate_placements(topo, pow2_ranks_only=True)
        assert all(p.ranks & (p.ranks - 1) == 0 for p in cands)


class TestCandidatePlacementEdges:
    """Edge cases of the exploration grid: max_total interplay with the
    numa_domains/total extras, the pow2 filter, and thread options."""

    def _topo(self):
        return Topology("t", numa_domains=4, cores_per_domain=12)

    def test_max_total_caps_every_placement(self):
        cands = candidate_placements(self._topo(), max_total=10)
        assert cands
        for p in cands:
            assert p.total_cores_used <= 10

    def test_max_total_replaces_total_extra(self):
        # the "total" extra becomes the cap itself, not the node total
        cands = candidate_placements(self._topo(), max_total=10)
        ranks = {p.ranks for p in cands}
        assert 10 in ranks
        assert 48 not in ranks
        # numa_domains (4, also a power of two) still present
        assert 4 in ranks

    def test_max_total_above_node_clamps_to_node(self):
        topo = self._topo()
        assert candidate_placements(topo, max_total=10_000) == candidate_placements(
            topo
        )

    def test_non_pow2_numa_domains_extra_injected(self):
        # 3 domains: the per-domain rank count is not a power of two but
        # must still be swept (it is the recommended rank count)
        topo = Topology("t", numa_domains=3, cores_per_domain=10)
        ranks = {p.ranks for p in candidate_placements(topo)}
        assert 3 in ranks
        assert 30 in ranks  # the total extra

    def test_pow2_filter_drops_injected_extras(self):
        topo = Topology("t", numa_domains=3, cores_per_domain=10)
        cands = candidate_placements(topo, pow2_ranks_only=True)
        ranks = {p.ranks for p in cands}
        assert all(r & (r - 1) == 0 for r in ranks)
        assert 3 not in ranks and 30 not in ranks

    def test_pow2_filter_composes_with_max_total(self):
        cands = candidate_placements(
            self._topo(), pow2_ranks_only=True, max_total=10
        )
        for p in cands:
            assert p.ranks & (p.ranks - 1) == 0
            assert p.total_cores_used <= 10
        assert {p.ranks for p in cands} == {1, 2, 4, 8}

    def test_full_domain_thread_count_always_offered(self):
        # 12 threads is not a power of two; the per-domain count must be
        # injected whenever it fits a rank's share
        cands = candidate_placements(self._topo())
        assert any(p.ranks == 1 and p.threads == 12 for p in cands)
        assert any(p.ranks == 4 and p.threads == 12 for p in cands)

    def test_max_threads_share_included(self):
        # each rank's share (total // ranks) appears even when odd-sized
        topo = Topology("t", numa_domains=3, cores_per_domain=10)
        cands = candidate_placements(topo)
        assert any(p.ranks == 4 and p.threads == 7 for p in cands)  # 30//4


class TestPlacementStraddlingDomains:
    """domains_used / active_cores_per_domain when a rank's threads
    straddle CMG boundaries."""

    def _topo(self):
        return Topology("t", numa_domains=4, cores_per_domain=12)

    def test_threads_overflow_one_domain(self):
        topo = self._topo()
        # 13 threads need two domains; one rank -> 2 domains, 6.5 avg
        assert Placement(1, 13).domains_used(topo) == 2
        assert Placement(1, 13).active_cores_per_domain(topo) == pytest.approx(6.5)
        assert Placement(1, 13).spans_domains(topo)

    def test_two_ranks_straddling(self):
        topo = self._topo()
        # each of 2 ranks needs ceil(18/12)=2 domains -> all 4 used
        p = Placement(2, 18)
        assert p.domains_used(topo) == 4
        assert p.active_cores_per_domain(topo) == pytest.approx(36 / 4)

    def test_rank_count_caps_domains(self):
        topo = self._topo()
        # more ranks than domains: every domain is in use
        assert Placement(8, 6).domains_used(topo) == 4
        assert Placement(48, 1).domains_used(topo) == 4
        assert Placement(48, 1).active_cores_per_domain(topo) == 12

    def test_exact_domain_fit_does_not_straddle(self):
        topo = self._topo()
        assert Placement(4, 12).domains_used(topo) == 4
        assert not Placement(4, 12).spans_domains(topo)
        assert Placement(2, 12).domains_used(topo) == 2
        assert Placement(2, 12).active_cores_per_domain(topo) == 12

    def test_oversubscription_rejected_by_domains_used(self):
        with pytest.raises(PlacementError):
            Placement(4, 13).domains_used(self._topo())


class TestA64FX:
    def test_datasheet_invariants(self):
        m = a64fx()
        assert m.total_cores == 48
        assert m.topology.numa_domains == 4
        # 70.4 GF/s per core, 3.379 TF/s node at 2.2 GHz
        assert m.core.peak_dp_flops == pytest.approx(70.4e9, rel=1e-3)
        assert m.peak_dp_flops_node == pytest.approx(3.3792e12, rel=1e-3)
        assert m.peak_bandwidth_node == pytest.approx(1024e9, rel=1e-3)
        assert m.line_bytes == 256
        assert m.widest_isa is SVE512

    def test_recommended_placement(self):
        p = a64fx().recommended_placement()
        assert (p.ranks, p.threads) == (4, 12)

    def test_cache_sizes(self):
        m = a64fx()
        assert m.cache_levels[0].capacity_bytes == 64 * 1024
        assert m.cache_levels[1].capacity_bytes == 8 * 1024 * 1024
        assert m.cache_levels[1].shared_by_cores == 12


class TestXeon:
    def test_basics(self):
        m = xeon()
        assert m.widest_isa is AVX512
        assert m.line_bytes == 64
        assert len(m.cache_levels) == 3
        assert m.topology.numa_domains == 1

    def test_xeon_has_less_bandwidth_than_a64fx(self):
        assert xeon().peak_bandwidth_node < a64fx().peak_bandwidth_node / 4


class TestThunderX2:
    def test_basics(self):
        from repro.machine import thunderx2

        m = thunderx2()
        assert m.widest_isa.name == "neon"
        assert m.total_cores == 32
        # TX2 per-core DP peak: 2 pipes x 2 lanes x 2 x 2.5 GHz = 20 GF/s
        assert m.core.peak_dp_flops == pytest.approx(20e9, rel=1e-3)

    def test_bandwidth_hierarchy_vs_a64fx(self):
        from repro.machine import a64fx, thunderx2

        assert thunderx2().peak_bandwidth_node < a64fx().peak_bandwidth_node / 8

    def test_stream_ratio_matches_related_work(self):
        # [19]/[20]: A64FX sustains roughly an order of magnitude more
        # STREAM bandwidth than a TX2 socket.
        from repro.compilers import compile_kernel
        from repro.ir import Language
        from repro.machine import a64fx, thunderx2
        from repro.perf import nest_time
        from repro.suites.kernels_common import stream_triad

        kernel = stream_triad("tx2_triad", 1 << 26, Language.C)
        times = {}
        for machine, compiler in ((a64fx(), "FJtrad"), (thunderx2(), "GNU")):
            ck = compile_kernel(compiler, kernel, machine)
            times[machine.name] = nest_time(
                ck.nest_infos[0],
                machine,
                threads=machine.total_cores,
                active_cores_per_domain=machine.topology.cores_per_domain,
                domains=machine.topology.numa_domains,
            ).total_s
        ratio = times["ThunderX2"] / times["A64FX"]
        assert 5 <= ratio <= 15
