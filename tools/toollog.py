"""Shared console/structured-log plumbing for the ``tools/`` gate scripts.

Every gate script prints its checks to the console; with ``--log-json
PATH`` the same events are also appended to a structured JSONL file
(one record per check, correlated by tool name), and ``--quiet``
silences the console progress while keeping warnings/errors and the
structured stream.  The scripts stay runnable from any directory —
this module pins ``src/`` onto ``sys.path`` exactly like the scripts
themselves do.
"""
from __future__ import annotations

import sys
from contextlib import contextmanager
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.telemetry import StructuredLogger, logging_active  # noqa: E402


def add_logging_args(parser) -> None:
    """Attach the shared ``--log-json`` / ``--quiet`` options."""
    parser.add_argument(
        "--log-json", metavar="PATH", default=None,
        help="append structured JSONL records of the script's checks here",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress console progress (warnings/errors and the "
             "structured log still come through)",
    )


@contextmanager
def tool_logging(args, tool: str):
    """Yield a ``say(event, message, ...)`` emitter for one tool run.

    ``say`` always records a structured event (a no-op unless
    ``--log-json`` installed a logger) and prints the message unless
    ``--quiet`` — warnings and errors print to stderr regardless.
    """
    logger = (
        StructuredLogger(args.log_json)
        if getattr(args, "log_json", None)
        else None
    )
    quiet = bool(getattr(args, "quiet", False))

    def say(event: str, message: str, *, level: str = "info",
            **fields: object) -> None:
        telemetry.log_event(
            f"{tool}.{event}", level=level, message=message, **fields
        )
        if level in ("warning", "error"):
            print(message, file=sys.stderr)
        elif not quiet:
            print(message)

    with logging_active(logger):
        try:
            yield say
        finally:
            if logger is not None:
                logger.close()
