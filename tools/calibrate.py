#!/usr/bin/env python3
"""Calibration workbench: the full diagnostic view of the campaign.

Prints, for every suite, the per-benchmark times under every variant,
the best-compiler gain and winner, and the suite statistics next to
the paper's targets — the view used while tuning
`repro/compilers/quirks.py`.  Run after any model change; the golden
test (`tests/integration/test_figure2_golden.py`) and the claim bands
(`repro/analysis/report.py`) are the pass/fail gates, this is the
microscope.

Usage:  python tools/calibrate.py [suite ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.analysis import benchmark_gains, evaluate, suite_summary  # noqa: E402
from repro.api import CampaignConfig, CampaignSession  # noqa: E402
from repro.harness import run_polybench_xeon  # noqa: E402
from repro.suites import all_suites  # noqa: E402

PAPER_TARGETS = {
    "micro": "mean 1.17x, median 1.00x, peak 2.4x, 4 GNU wins, 6 GNU faults",
    "polybench": "median 3.8x, mvt > 250,000x, LLVM+Polly dominant",
    "top500": "HPL ~1.05x, BabelStream up to 2.04x, CV 22%",
    "ecp": "mean 1.65x, median 1.09x, XSBench 6.7x",
    "fiber": "FJtrad dominant; FFB & mVMC exceptions",
    "spec_cpu": "mean 1.49x; GNU wins int half; FJtrad > clang on int",
    "spec_omp": "mean 2.5x; kdtree 16.5x; GNU worst on FP",
}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "suites", nargs="*", metavar="SUITE",
        help="suites to show (default: all)",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "calibrate") as say:
        wanted = set(args.suites) or {s.name for s in all_suites()}
        result = CampaignSession(CampaignConfig()).run()
        gains = {g.benchmark: g for g in benchmark_gains(result)}
        variants = result.variants()

        for suite in all_suites():
            if suite.name not in wanted:
                continue
            say("suite", f"\n=== {suite.display} ===", suite=suite.name)
            say("target", f"paper: {PAPER_TARGETS[suite.name]}",
                suite=suite.name)
            header = f"{'benchmark':22s}" + "".join(
                f"{v:>12s}" for v in variants) + f"{'gain':>9s} winner"
            say("header", header)
            for bench in suite.benchmarks:
                g = gains[bench.full_name]
                row = f"{bench.name:22s}"
                for v in variants:
                    t = g.times[v]
                    row += (f"{'FAIL':>12s}" if t == float("inf")
                            else f"{t:12.4f}")
                row += f"{g.best_gain:9.2f} {g.best_variant}"
                say("bench", row, benchmark=bench.full_name,
                    gain=g.best_gain, winner=g.best_variant)
            say("summary", f"-> {suite_summary(result, suite.name)}",
                suite=suite.name)

        say("section", "\n=== claim evaluation ===")
        xeon = run_polybench_xeon()
        checks = evaluate(result, xeon)
        for c in checks:
            say("claim", str(c), claim=c.claim_id, ok=c.passed)
        failed = sum(1 for c in checks if not c.passed)
        say("verdict", f"\n{len(checks) - failed}/{len(checks)} claims pass",
            passed=len(checks) - failed, total=len(checks))
        return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
