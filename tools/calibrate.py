#!/usr/bin/env python3
"""Calibration workbench: the full diagnostic view of the campaign.

Prints, for every suite, the per-benchmark times under every variant,
the best-compiler gain and winner, and the suite statistics next to
the paper's targets — the view used while tuning
`repro/compilers/quirks.py`.  Run after any model change; the golden
test (`tests/integration/test_figure2_golden.py`) and the claim bands
(`repro/analysis/report.py`) are the pass/fail gates, this is the
microscope.

Usage:  python tools/calibrate.py [suite ...]
"""

from __future__ import annotations

import sys

from repro.analysis import benchmark_gains, evaluate, suite_summary
from repro.api import CampaignConfig, CampaignSession
from repro.harness import run_polybench_xeon
from repro.suites import all_suites

PAPER_TARGETS = {
    "micro": "mean 1.17x, median 1.00x, peak 2.4x, 4 GNU wins, 6 GNU faults",
    "polybench": "median 3.8x, mvt > 250,000x, LLVM+Polly dominant",
    "top500": "HPL ~1.05x, BabelStream up to 2.04x, CV 22%",
    "ecp": "mean 1.65x, median 1.09x, XSBench 6.7x",
    "fiber": "FJtrad dominant; FFB & mVMC exceptions",
    "spec_cpu": "mean 1.49x; GNU wins int half; FJtrad > clang on int",
    "spec_omp": "mean 2.5x; kdtree 16.5x; GNU worst on FP",
}


def main(argv: list[str]) -> int:
    wanted = set(argv) or {s.name for s in all_suites()}
    result = CampaignSession(CampaignConfig()).run()
    gains = {g.benchmark: g for g in benchmark_gains(result)}
    variants = result.variants()

    for suite in all_suites():
        if suite.name not in wanted:
            continue
        print(f"\n=== {suite.display} ===")
        print(f"paper: {PAPER_TARGETS[suite.name]}")
        header = f"{'benchmark':22s}" + "".join(f"{v:>12s}" for v in variants) + f"{'gain':>9s} winner"
        print(header)
        for bench in suite.benchmarks:
            g = gains[bench.full_name]
            row = f"{bench.name:22s}"
            for v in variants:
                t = g.times[v]
                row += f"{'FAIL':>12s}" if t == float("inf") else f"{t:12.4f}"
            row += f"{g.best_gain:9.2f} {g.best_variant}"
            print(row)
        print(f"-> {suite_summary(result, suite.name)}")

    print("\n=== claim evaluation ===")
    xeon = run_polybench_xeon()
    checks = evaluate(result, xeon)
    for c in checks:
        print(c)
    failed = sum(1 for c in checks if not c.passed)
    print(f"\n{len(checks) - failed}/{len(checks)} claims pass")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
