#!/usr/bin/env python
"""Tuner gate: the auto-tuner must rediscover, resume, and replay.

Runs the flagship INT8 SDOT GEMM scenario through seeded successive
halving five ways and asserts the tuning contract:

1. a cold-cache search rediscovers the scenario's known-best
   configuration (the paper's ~94%-efficient 6x4 register tile);
2. a second, cacheless search produces an identical trajectory —
   the search is deterministic, not lucky;
3. killing the search mid-rung (``stop_after_evaluations``) loses no
   journaled evaluation, and a ``resume=True`` rerun completes with
   the same winner and trajectory;
4. the killed-and-resumed journal is byte-identical to the
   uninterrupted run's journal;
5. resuming the finished search is a pure replay: zero fresh
   evaluations and not a byte appended.

Writes a JSON report (``--out``, default ``tuner-report.json``) and
exits non-zero on the first broken assertion.  CI runs this as part of
the gauntlet; run it locally after touching the tuner, the strategies,
or the GEMM scenario::

    python tools/tuner_check.py --out tuner-report.json
"""
from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.tuning import TuneInterrupted, TuneSpec, run_tune  # noqa: E402

#: Fresh evaluations the killed search journals before the simulated
#: kill — deep enough into rung 0 that resume has real work to replay.
KILL_AFTER = 17


def _check(say, condition: bool, message: str, failures: list) -> None:
    if condition:
        say("check", f"  ok: {message}", ok=True)
    else:
        say("check", f"  BROKEN: {message}", level="error", ok=False)
        failures.append(message)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="tuner-report.json", help="report path"
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="root for the runs' journals (default: a fresh temp dir)",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "tuner_check") as say:
        root = Path(args.cache_dir) if args.cache_dir else Path(
            tempfile.mkdtemp(prefix="tuner-check-"))
        spec = TuneSpec()  # gemm-int8-sdot, successive halving, seeded
        failures: list[str] = []
        t0 = time.monotonic()

        # -- cold-cache rediscovery -----------------------------------------
        say("section", "cold-cache successive halving:")
        clean = run_tune(spec.with_(cache_dir=root / "clean"))
        say("clean", f"  winner {clean.best_label} in {clean.evaluations} "
            f"evaluations over {len(clean.rungs)} rungs",
            winner=clean.best_label, evaluations=clean.evaluations)
        _check(say, clean.complete and clean.rediscovered is True,
               f"search rediscovered the known-best config "
               f"({clean.known_best_label})", failures)
        _check(say, clean.evaluations < clean.meta.get("space_size", 0) * 2,
               "halving spent fewer evaluations than two full grids",
               failures)
        _check(say, len(clean.rungs) >= 3
               and clean.rungs[0].trials < clean.rungs[-1].trials,
               "fidelity climbed across at least three rungs", failures)

        # -- determinism -----------------------------------------------------
        say("section", "cacheless re-run:")
        rerun = run_tune(spec)
        _check(say, rerun.trajectory == clean.trajectory
               and rerun.best_label == clean.best_label,
               "cacheless re-run traces an identical trajectory", failures)

        # -- mid-search kill -------------------------------------------------
        say("section", f"kill after {KILL_AFTER} evaluations:")
        killed_spec = spec.with_(cache_dir=root / "killed")
        try:
            run_tune(killed_spec, stop_after_evaluations=KILL_AFTER)
            _check(say, False, "the kill-switch fired", failures)
        except TuneInterrupted:
            say("killed", f"  killed after {KILL_AFTER} evaluations, "
                "as planned", killed_after=KILL_AFTER)

        # -- resume the killed search ---------------------------------------
        say("section", "resume:")
        resumed = run_tune(killed_spec.with_(resume=True))
        _check(say, resumed.complete
               and resumed.best_label == clean.best_label,
               "resumed search finishes with the same winner", failures)
        _check(say, resumed.trajectory == clean.trajectory,
               "resumed trajectory matches the uninterrupted run", failures)
        _check(say, resumed.from_journal >= KILL_AFTER,
               f"resume replayed the journaled evaluations "
               f"({resumed.from_journal} >= {KILL_AFTER})", failures)
        _check(say, resumed.evaluations + KILL_AFTER <= clean.evaluations,
               "resume executed only the remainder", failures)

        clean_bytes = Path(clean.journal).read_bytes()
        resumed_bytes = Path(resumed.journal).read_bytes()
        _check(say, clean_bytes == resumed_bytes,
               f"killed-and-resumed journal is byte-identical to the "
               f"clean run's ({len(clean_bytes)} bytes)", failures)

        # -- pure replay -----------------------------------------------------
        say("section", "replay of the finished search:")
        replay = run_tune(killed_spec.with_(resume=True))
        _check(say, replay.evaluations == 0
               and replay.best_label == clean.best_label,
               "replaying the finished journal executes nothing", failures)
        _check(say, Path(resumed.journal).read_bytes() == resumed_bytes,
               "replay appends not a byte to the journal", failures)

        elapsed = time.monotonic() - t0
        report = {
            "scenario": clean.scenario,
            "strategy": clean.strategy,
            "winner": clean.best_label,
            "known_best": clean.known_best_label,
            "rediscovered": clean.rediscovered,
            "evaluations": clean.evaluations,
            "rungs": len(clean.rungs),
            "killed_after": KILL_AFTER,
            "resumed_from_journal": resumed.from_journal,
            "journal_bytes": len(clean_bytes),
            "elapsed_s": round(elapsed, 3),
            "broken": failures,
            "ok": not failures,
        }
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        say("report", f"report: {args.out}", path=args.out)
        if not args.cache_dir:
            shutil.rmtree(root, ignore_errors=True)

        if failures:
            say("fail", f"{len(failures)} tuner assertion(s) broken",
                level="error", broken=len(failures))
            return 1
        say("pass", "tuner gate: rediscovery, resume and replay are "
            "deterministic and loss-free")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
