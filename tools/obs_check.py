#!/usr/bin/env python
"""Observability gate: the campaign observatory must be scrapeable.

Runs a two-shard campaign with the live endpoint and the full
telemetry stack on, and asserts the observability contract:

1. while shard 1 runs, ``GET /metrics`` answers with valid Prometheus
   text exposition (checked by the conformance validator: HELP/TYPE
   lines, escaping, cumulative histogram buckets, ``+Inf``,
   ``_sum``/``_count``), and ``/healthz`` + ``/progress`` answer JSON;
2. the scrape happens mid-campaign (from inside an event handler), so
   the endpoint provably serves concurrent with cell execution;
3. both shards leave an append-only metrics history beside their
   journals, and ``a64fx-campaign status`` assembles completion,
   throughput and cache-hit rate from the merged artifacts;
4. the campaign doctor runs over the same directory and reports
   without error;
5. the structured JSONL log carries correlated engine events for both
   shards.

Writes a JSON report (``--out``, default ``obs-report.json``) and
exits non-zero on the first broken assertion.  CI runs this as the
``observability`` job; run it locally after touching the telemetry
layer::

    python tools/obs_check.py --out obs-report.json
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.api import CampaignConfig, CampaignSession  # noqa: E402
from repro.harness.engine import EventKind  # noqa: E402
from repro.harness.observatory import (  # noqa: E402
    campaign_status,
    doctor_from_cache_dir,
    render_doctor,
    render_status,
)
from repro.telemetry import validate_exposition  # noqa: E402
from repro.telemetry.history import HistoryStore  # noqa: E402

SUITES = ("polybench",)
VARIANTS = ("GNU", "LLVM")


def _check(say, condition: bool, message: str, failures: list) -> None:
    if condition:
        say("check", f"  ok: {message}", ok=True)
    else:
        say("check", f"  BROKEN: {message}", level="error", ok=False)
        failures.append(message)


def _get(url: str) -> "tuple[int, str, str]":
    with urllib.request.urlopen(url, timeout=10) as resp:
        return (resp.status, resp.headers.get("Content-Type", ""),
                resp.read().decode("utf-8"))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="obs-report.json", help="report path")
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "obs_check") as say:
        failures: list[str] = []
        report: dict = {}
        t0 = time.monotonic()
        with tempfile.TemporaryDirectory(prefix="obs-check-") as td:
            cache = Path(td)
            log_path = cache / "campaign-log.jsonl"
            base = CampaignConfig(
                suites=SUITES, variants=VARIANTS, workers=2,
                cache_dir=cache, telemetry=True, serve=0,
                log_json=log_path,
            )

            # -- shard 1: scrape the live endpoint mid-campaign ---------
            say("section", "shard 1/2 with live endpoint:")
            session = CampaignSession(base.with_(shard=(1, 2)))
            scraped: dict = {}

            @session.subscribe
            def scrape(event) -> None:
                # One scrape, as soon as cells start completing: the
                # engine thread blocks here while the observatory's
                # daemon thread answers, so this exercises genuinely
                # concurrent serving without sleep/poll races.
                if scraped or event.kind not in (
                    EventKind.CELL_FINISHED, EventKind.CACHE_HIT
                ):
                    return
                server = session.observatory
                if server is None:
                    return
                for route in ("/metrics", "/healthz", "/progress"):
                    scraped[route] = _get(server.url + route)

            session.run()
            _check(say, set(scraped) ==
                   {"/metrics", "/healthz", "/progress"},
                   "endpoint answered /metrics, /healthz and /progress "
                   "mid-campaign", failures)

            status_code, ctype, text = scraped.get(
                "/metrics", (0, "", ""))
            _check(say, status_code == 200 and "text/plain" in ctype
                   and "version=0.0.4" in ctype,
                   "/metrics is Prometheus text exposition 0.0.4",
                   failures)
            problems = validate_exposition(text)
            _check(say, not problems,
                   f"exposition passes conformance ({len(problems)} "
                   f"problem(s): {problems[:3]})", failures)
            _check(say, 'shard="1of2"' in text,
                   "samples carry the shard label", failures)
            _check(say, "a64fx_engine_progress_total" in text
                   and "a64fx_runner_explore_s_bucket" in text,
                   "gauges and histogram buckets are exported", failures)

            status_code, ctype, text = scraped.get("/healthz", (0, "", ""))
            health = json.loads(text) if text else {}
            _check(say, status_code == 200
                   and health.get("status") == "ok"
                   and health.get("shard") == [1, 2],
                   "/healthz reports ok with the campaign coordinates",
                   failures)

            status_code, ctype, text = scraped.get("/progress", (0, "", ""))
            progress = json.loads(text) if text else {}
            _check(say, status_code == 200
                   and progress.get("state") == "running"
                   and progress.get("total") == 30
                   and progress.get("completed", 0) >= 1,
                   "/progress reports live completion", failures)
            report["scraped_progress"] = progress

            # -- shard 2 completes the campaign -------------------------
            say("section", "shard 2/2:")
            CampaignSession(base.with_(shard=(2, 2))).run()

            histories = sorted(
                p.name for p in cache.glob("history-*.jsonl"))
            _check(say, histories ==
                   ["history-1of2.jsonl", "history-2of2.jsonl"],
                   f"both shards left a metrics history ({histories})",
                   failures)
            merged = HistoryStore(cache).merge()
            _check(say, merged is not None
                   and len(merged.samples) >= 60,
                   "merged history carries a sample per completed cell",
                   failures)

            # -- status + doctor over the merged artifacts ---------------
            say("section", "status and doctor:")
            status = campaign_status(cache)
            _check(say, status is not None and status.complete
                   and status.total == 60,
                   "campaign status reports the full grid complete",
                   failures)
            _check(say, status is not None
                   and status.throughput_cps is not None
                   and status.throughput_cps > 0,
                   "status derives aggregate throughput from the "
                   "history", failures)
            if status is not None:
                say("status", render_status(status))
                report["status"] = {
                    "completed": status.completed,
                    "total": status.total,
                    "throughput_cps": status.throughput_cps,
                    "cache_hit_rate": status.cache_hit_rate,
                }
            doctor = doctor_from_cache_dir(cache)
            _check(say, doctor is not None and doctor.findings,
                   "the campaign doctor reports findings", failures)
            if doctor is not None:
                say("doctor", render_doctor(doctor))
                report["doctor_worst"] = doctor.worst

            # -- structured log -----------------------------------------
            say("section", "structured log:")
            events = [json.loads(line)
                      for line in log_path.read_text().splitlines()]
            shards_seen = {r.get("shard") for r in events
                           if "shard" in r}
            _check(say, {"1of2", "2of2"} <= shards_seen,
                   "the JSONL log correlates both shards "
                   f"({sorted(shards_seen)})", failures)
            finished = [r for r in events
                        if r.get("event") == "engine.cell_finished"]
            _check(say, len(finished) >= 30,
                   f"cell lifecycle events are logged "
                   f"({len(finished)} cell_finished)", failures)
            report["log_records"] = len(events)

        report["elapsed_s"] = round(time.monotonic() - t0, 3)
        report["broken"] = failures
        report["ok"] = not failures
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        say("report", f"report: {args.out}", path=args.out)

        if failures:
            say("fail", f"{len(failures)} observability assertion(s) broken",
                level="error", broken=len(failures))
            return 1
        say("pass", "observability gate: endpoint, history, status and "
            "doctor all hold")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
