#!/usr/bin/env python
"""Chaos gate: a seeded fault-injection campaign must self-heal.

Runs the same campaign three ways — fault-free, chaos at ``workers=1``,
chaos at ``workers=4`` — under the committed fault plan
(``tools/chaos_plan.json``) and asserts the resilience contract:

1. every chaos campaign *completes* (no raised exception, full grid);
2. cells hit only by transient faults retry and produce records
   byte-identical to the fault-free run, serial and parallel alike;
3. cells under a permanent rule degrade to failure records carrying
   the right taxonomy status and a structured ``failure`` block;
4. the engine surfaces what happened (retries, worker restarts,
   injected cache losses) in ``CampaignResult.meta``.

Writes a JSON report (``--out``, default ``chaos-report.json``) and
exits non-zero on the first broken assertion.  CI runs this as the
``chaos`` job; run it locally after touching the engine, runner, or
faults subsystem::

    python tools/chaos_check.py --out chaos-report.json
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.analysis import resilience_markdown  # noqa: E402
from repro.api import CampaignConfig, CampaignSession  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.harness.results import FAILURE_STATUSES  # noqa: E402

#: Campaign slice the gate exercises (small enough for CI, big enough
#: for every fault site in the plan to fire somewhere).
SUITES = ("polybench",)
VARIANTS = ("GNU", "FJtrad", "LLVM")

#: Benchmarks the committed plan permanently breaks, and the taxonomy
#: status each must degrade to.
EXPECTED_PERMANENT = {
    "polybench.2mm": "compiler error",
    "polybench.3mm": "runtime error",
    "polybench.atax": "timeout",
}


class ChaosCheckError(AssertionError):
    pass


def _check(say, condition: bool, message: str, failures: list) -> None:
    if condition:
        say("check", f"  ok: {message}", ok=True)
    else:
        say("check", f"  BROKEN: {message}", level="error", ok=False)
        failures.append(message)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--plan", default=str(ROOT / "tools" / "chaos_plan.json"),
        help="fault plan JSON (default: tools/chaos_plan.json)",
    )
    parser.add_argument(
        "--out", default="chaos-report.json", help="report path"
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "chaos_check") as say:
        plan = FaultPlan.load(args.plan)
        say("plan", f"fault plan: seed {plan.seed}, {len(plan.rules)} "
            f"rules, digest {plan.digest()[:12]}",
            seed=plan.seed, rules=len(plan.rules), digest=plan.digest())

        base = CampaignConfig(suites=SUITES, variants=VARIANTS)
        chaos_cfg = base.with_(fault_plan=plan, max_retries=2, retry_backoff_s=0.0)

        t0 = time.monotonic()
        free = CampaignSession(base).run()
        chaos1 = CampaignSession(chaos_cfg).run()
        chaos4 = CampaignSession(chaos_cfg.with_(workers=4)).run()
        elapsed = time.monotonic() - t0

        failures: list[str] = []
        report: dict = {
            "plan": {"path": args.plan, "seed": plan.seed,
                     "digest": plan.digest(), "rules": len(plan.rules)},
            "cells": len(free.records),
            "elapsed_s": round(elapsed, 3),
        }

        # 1. completion: the chaos grids are as large as the clean grid.
        say("section", "completion:")
        for label, res in (("workers=1", chaos1), ("workers=4", chaos4)):
            _check(say, set(res.records) == set(free.records),
                   f"chaos {label} campaign completed the full "
                   f"{len(free.records)}-cell grid", failures)

        # 2. self-healing: outside the permanently-broken benchmarks, chaos
        # records equal the fault-free run bit for bit.
        say("section", "self-healing:")
        healthy = {k: r for k, r in free.records.items()
                   if k[0] not in EXPECTED_PERMANENT}
        for label, res in (("workers=1", chaos1), ("workers=4", chaos4)):
            subset = {k: r for k, r in res.records.items()
                      if k[0] not in EXPECTED_PERMANENT}
            _check(say, subset == healthy,
                   f"chaos {label}: all {len(healthy)} transiently-faulted "
                   "cells healed to fault-free records", failures)
        _check(say, chaos1.meta.get("retried", 0) > 0,
               f"chaos workers=1 absorbed retries "
               f"({chaos1.meta.get('retried', 0)})", failures)
        _check(say, chaos4.meta.get("worker_restarts", 0) >= 1,
               f"chaos workers=4 survived worker crashes "
               f"({chaos4.meta.get('worker_restarts', 0)} pool restart(s))",
               failures)
        _check(say, chaos1.meta.get("cache_faults", 0) == 0,
               "no cache dir, so no injected cache losses counted", failures)

        # 3. taxonomy: permanent rules degrade to the right statuses.
        say("section", "taxonomy:")
        for label, res in (("workers=1", chaos1), ("workers=4", chaos4)):
            for bench, status in EXPECTED_PERMANENT.items():
                cells = [r for k, r in res.records.items() if k[0] == bench]
                _check(say, bool(cells) and all(r.status == status for r in cells),
                       f"chaos {label}: {bench} degraded to {status!r}", failures)
                _check(say, all(r.failure is not None
                           and r.failure.site
                           and r.failure.injected for r in cells),
                       f"chaos {label}: {bench} carries a structured "
                       "failure block", failures)
        statuses = {r.status for r in chaos1.records.values()
                    if r.status in FAILURE_STATUSES}
        _check(say, statuses == set(EXPECTED_PERMANENT.values()),
               f"only the planned failure statuses appear: {sorted(statuses)}",
               failures)

        # 4. surfacing: meta and the report section record the chaos.
        say("section", "surfacing:")
        for key in ("fault_plan", "fault_seed", "retried", "failures",
                    "timeouts", "worker_restarts"):
            _check(say, key in chaos4.meta, f"meta carries {key!r}", failures)
        _check(say, chaos4.meta.get("fault_plan") == plan.digest(),
               "meta pins the plan digest", failures)
        section = resilience_markdown(chaos1)
        _check(say, "## Resilience" in section and "timeout" in section,
               "resilience report section renders the chaos run", failures)

        report["chaos1"] = {k: chaos1.meta.get(k) for k in
                            ("retried", "failures", "timeouts",
                             "worker_restarts", "fault_plan")}
        report["chaos4"] = {k: chaos4.meta.get(k) for k in
                            ("retried", "failures", "timeouts",
                             "worker_restarts", "fault_plan")}
        report["broken"] = failures
        report["ok"] = not failures
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        say("report", f"report: {args.out}", path=args.out)

        if failures:
            say("fail", f"{len(failures)} resilience assertion(s) broken",
                level="error", broken=len(failures))
            return 1
        say("pass", "chaos gate: all resilience assertions hold")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
