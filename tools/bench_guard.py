#!/usr/bin/env python
"""Engine performance regression guard.

Times the campaign engine's three load-bearing scenarios —

- ``cold_serial_s``: full polybench x 3 variants, workers=1, no cache
  (best-of-``REPEATS``; the process-global compile/feature memos make
  repeats warm, so this is the steady-state cost a campaign's
  placement sweeps actually pay);
- ``cold_serial_first_s``: the first repeat of the same grid — the
  genuinely cold, memo-empty cost (denominator for the warm ratio);
- ``cold_parallel_s``: the same grid across 4 worker processes;
- ``warm_cache_s``: an identical repeat against a populated cell cache
  (must be nearly free);
- ``chaos_overhead_s``: the serial grid under the committed fault plan
  (resilience machinery must not dominate);
- ``telemetry_on_s``: the serial grid with the flight recorder on
  (spans + metrics + history sampling must stay cheap relative to the
  work they observe)

— writes the measurements to ``--out`` (``BENCH_engine.json``) and
compares them against the committed baseline
(``benchmarks/BENCH_engine.baseline.json``).

Two kinds of check:

- *absolute*, with a generous ``tolerance`` multiplier (default 3x) so
  slow CI runners don't flap the gate — this catches order-of-magnitude
  regressions (an accidentally quadratic loop, a cache that stopped
  caching);
- *ratio*, machine-independent: warm-cache repeats must stay far
  cheaper than cold runs, and chaos bookkeeping must stay cheap
  relative to the work it wraps;
- *ratchet*, lower-is-better: the baseline's ``ratchets`` block pins a
  hard ceiling per scenario (no tolerance multiplier).  Once a perf win
  lands, the ceiling keeps it: ``--update-baseline`` only ever lowers a
  ratchet (to 2x the new measurement), never raises it.

Refresh the baseline after an intentional perf change::

    python tools/bench_guard.py --update-baseline
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.api import CampaignConfig, CampaignSession  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402

BASELINE = ROOT / "benchmarks" / "BENCH_engine.baseline.json"
SUITES = ("polybench",)
VARIANTS = ("GNU", "FJtrad", "LLVM")
REPEATS = 3

#: Absolute tolerance: measured may be up to this multiple of baseline.
TOLERANCE = 3.0
#: Warm-cache repeat must cost at most this fraction of a cold run.
WARM_RATIO_MAX = 0.5
#: The chaos run may cost at most this multiple of the plain serial run
#: (it does strictly more work: every transient fault re-runs a cell).
CHAOS_RATIO_MAX = 3.0

#: The flight-recorder run may cost at most this multiple of the
#: memo-cold serial run (tracing bypasses the compile memo for span
#: fidelity, so the cold first run is the like-for-like denominator) —
#: observability must never dominate the observed work.
TELEMETRY_RATIO_MAX = 2.0


#: --update-baseline lowers a ratchet to this multiple of the new
#: measurement (headroom for runner jitter), and never raises one.
RATCHET_HEADROOM = 2.0


def _time(fn) -> tuple[float, float]:
    """(first-run, best-of-REPEATS) wall-clock of ``fn`` (seconds)."""
    first = best = float("inf")
    for i in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if i == 0:
            first = elapsed
        best = min(best, elapsed)
    return first, best


def measure() -> dict:
    base = CampaignConfig(suites=SUITES, variants=VARIANTS)
    plan = FaultPlan.load(ROOT / "tools" / "chaos_plan.json")
    chaos = base.with_(fault_plan=plan, max_retries=2, retry_backoff_s=0.0)

    results: dict[str, float] = {}
    first, best = _time(lambda: CampaignSession(base).run())
    results["cold_serial_s"] = best
    results["cold_serial_first_s"] = first
    _, results["cold_parallel_s"] = _time(
        lambda: CampaignSession(base.with_(workers=4)).run()
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        warm = base.with_(cache_dir=cache_dir)
        CampaignSession(warm).run()  # populate
        _, results["warm_cache_s"] = _time(lambda: CampaignSession(warm).run())

    _, results["chaos_overhead_s"] = _time(lambda: CampaignSession(chaos).run())
    _, results["telemetry_on_s"] = _time(
        lambda: CampaignSession(base.with_(telemetry=True)).run()
    )
    return {
        "scenarios": {k: round(v, 4) for k, v in results.items()},
        "grid": {"suites": list(SUITES), "variants": list(VARIANTS)},
        "repeats": REPEATS,
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
    }


def compare(measured: dict, baseline: dict, tolerance: float,
            say=None) -> list[str]:
    if say is None:
        def say(event, message, **kwargs):  # bare fallback for callers
            print(message)
    broken: list[str] = []
    scenarios = measured["scenarios"]
    for name, base_s in baseline.get("scenarios", {}).items():
        got = scenarios.get(name)
        if got is None:
            broken.append(f"scenario {name!r} missing from measurement")
            continue
        limit = base_s * tolerance
        verdict = "ok" if got <= limit else "REGRESSION"
        say("absolute", f"  {verdict}: {name} = {got:.3f}s "
            f"(baseline {base_s:.3f}s, limit {limit:.3f}s)",
            scenario=name, measured_s=got, limit_s=round(limit, 4),
            ok=got <= limit)
        if got > limit:
            broken.append(
                f"{name}: {got:.3f}s exceeds {tolerance:.1f}x baseline "
                f"({base_s:.3f}s)"
            )

    # Lower-is-better ratchets: hard ceilings, no tolerance multiplier.
    for name, ceiling in baseline.get("ratchets", {}).items():
        got = scenarios.get(name)
        if got is None:
            broken.append(f"ratcheted scenario {name!r} missing from measurement")
            continue
        verdict = "ok" if got <= ceiling else "REGRESSION"
        say("ratchet", f"  {verdict}: ratchet {name} = {got:.3f}s "
            f"(ceiling {ceiling:.4f}s, lower is better)",
            scenario=name, measured_s=got, ceiling_s=ceiling,
            ok=got <= ceiling)
        if got > ceiling:
            broken.append(
                f"{name}: {got:.3f}s exceeds the ratcheted ceiling "
                f"({ceiling:.4f}s) — a won optimization regressed"
            )

    # Machine-independent ratios.  The warm ratio compares against the
    # genuinely cold first run: best-of repeats are memo-warm and would
    # make the cell cache look broken on fast hosts.
    cold_first = scenarios.get("cold_serial_first_s", scenarios["cold_serial_s"])
    cold_best = scenarios["cold_serial_s"]
    warm = scenarios["warm_cache_s"]
    chaos = scenarios["chaos_overhead_s"]
    ratio = warm / cold_first if cold_first else 0.0
    verdict = "ok" if ratio <= WARM_RATIO_MAX else "REGRESSION"
    say("ratio", f"  {verdict}: warm/cold ratio = {ratio:.3f} "
        f"(limit {WARM_RATIO_MAX})",
        ratio="warm/cold", value=round(ratio, 4), limit=WARM_RATIO_MAX,
        ok=ratio <= WARM_RATIO_MAX)
    if ratio > WARM_RATIO_MAX:
        broken.append(
            f"warm-cache repeat costs {ratio:.2f}x a cold run "
            f"(limit {WARM_RATIO_MAX}) — the cell cache stopped caching"
        )
    # Chaos and cold best-of are both memo-warm: like-for-like.
    ratio = chaos / cold_best if cold_best else 0.0
    verdict = "ok" if ratio <= CHAOS_RATIO_MAX else "REGRESSION"
    say("ratio", f"  {verdict}: chaos/cold ratio = {ratio:.3f} "
        f"(limit {CHAOS_RATIO_MAX})",
        ratio="chaos/cold", value=round(ratio, 4), limit=CHAOS_RATIO_MAX,
        ok=ratio <= CHAOS_RATIO_MAX)
    if ratio > CHAOS_RATIO_MAX:
        broken.append(
            f"chaos campaign costs {ratio:.2f}x a plain run "
            f"(limit {CHAOS_RATIO_MAX}) — resilience bookkeeping too heavy"
        )
    # Telemetry vs the memo-cold first run: tracing deliberately
    # bypasses the process-global compile memo (a memo hit would drop
    # the compile spans), so a telemetry run always pays cold-style
    # compile work.  The gate bounds what the *recording* adds on top
    # of that — spans, metrics, history sampling.
    tele = scenarios.get("telemetry_on_s")
    if tele is not None:
        ratio = tele / cold_first if cold_first else 0.0
        verdict = "ok" if ratio <= TELEMETRY_RATIO_MAX else "REGRESSION"
        say("ratio", f"  {verdict}: telemetry/cold ratio = {ratio:.3f} "
            f"(limit {TELEMETRY_RATIO_MAX})",
            ratio="telemetry/cold", value=round(ratio, 4),
            limit=TELEMETRY_RATIO_MAX, ok=ratio <= TELEMETRY_RATIO_MAX)
        if ratio > TELEMETRY_RATIO_MAX:
            broken.append(
                f"telemetry-on campaign costs {ratio:.2f}x a cold run "
                f"(limit {TELEMETRY_RATIO_MAX}) — observability overhead "
                "too heavy"
            )
    return broken


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measurement to --baseline instead of comparing",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "bench_guard") as say:
        say("start",
            f"measuring engine scenarios ({REPEATS} repeats, best-of) ...",
            repeats=REPEATS)
        measured = measure()
        for name, seconds in measured["scenarios"].items():
            say("scenario", f"  {name} = {seconds:.3f}s",
                scenario=name, seconds=seconds)
        Path(args.out).write_text(json.dumps(measured, indent=2) + "\n")
        say("wrote", f"wrote {args.out}", path=args.out)

        if args.update_baseline:
            path = Path(args.baseline)
            ratchets: dict[str, float] = {}
            if path.exists():
                ratchets = json.loads(path.read_text()).get("ratchets", {})
            won = measured["scenarios"]["cold_serial_s"] * RATCHET_HEADROOM
            ratchets["cold_serial_s"] = round(
                min(ratchets.get("cold_serial_s", float("inf")), won), 4
            )
            measured["ratchets"] = ratchets
            path.write_text(json.dumps(measured, indent=2) + "\n")
            say("baseline", f"baseline updated: {args.baseline}",
                path=args.baseline)
            return 0

        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            say("error", f"no baseline at {baseline_path}; run with "
                "--update-baseline", level="error")
            return 1
        baseline = json.loads(baseline_path.read_text())
        say("compare", f"comparing against {baseline_path} "
            f"(tolerance {args.tolerance:.1f}x):",
            baseline=str(baseline_path), tolerance=args.tolerance)
        broken = compare(measured, baseline, args.tolerance, say=say)
        if broken:
            for line in broken:
                say("regression", f"REGRESSION: {line}", level="error")
            return 1
        say("pass", "regression guard: all scenarios within budget")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
