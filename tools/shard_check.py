#!/usr/bin/env python
"""Shard gate: a sharded campaign must merge back bit-for-bit.

Runs the same campaign four ways and asserts the sharding contract:

1. an unsharded serial run is the baseline;
2. shard 1/2 and shard 2/2 (into one shared cache dir) together cover
   the whole grid, disjointly;
3. killing shard 2 mid-run loses none of its checkpointed cells — the
   merge reports exactly the missing remainder, and a ``--resume`` of
   the same shard executes only that remainder;
4. the merged result is record-for-record — and JSON-byte — identical
   to the baseline, and an *unsharded* resume against the shard
   journals replays the full campaign without executing a single cell.

Writes a JSON report (``--out``, default ``shard-report.json``) and
exits non-zero on the first broken assertion.  CI runs this as the
``shard-resume`` job; run it locally after touching the engine or the
journal store::

    python tools/shard_check.py --out shard-report.json
"""
from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.api import CampaignConfig, CampaignSession  # noqa: E402
from repro.harness.engine import EventKind  # noqa: E402
from repro.harness.journalstore import (  # noqa: E402
    DirectoryJournalStore,
    merged_result,
    shard_cells,
)

#: Campaign slice the gate exercises (matches the chaos gate's scale).
SUITES = ("polybench",)
VARIANTS = ("GNU", "FJtrad", "LLVM")

#: Cells shard 2 completes before the simulated kill.
KILL_AFTER = 5


class _Killed(Exception):
    pass


def _check(say, condition: bool, message: str, failures: list) -> None:
    if condition:
        say("check", f"  ok: {message}", ok=True)
    else:
        say("check", f"  BROKEN: {message}", level="error", ok=False)
        failures.append(message)


def _records_json(result) -> str:
    return json.dumps(json.loads(result.to_json())["records"], sort_keys=True)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="shard-report.json", help="report path"
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared cache dir for the shards (default: a fresh temp dir)",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "shard_check") as say:
        cache = Path(args.cache_dir) if args.cache_dir else Path(
            tempfile.mkdtemp(prefix="shard-check-"))
        base = CampaignConfig(suites=SUITES, variants=VARIANTS)
        failures: list[str] = []
        t0 = time.monotonic()

        baseline = CampaignSession(base).run()
        cells = list(baseline.records)
        say("baseline", f"baseline: {len(cells)} cells, "
            f"{len(VARIANTS)} variants", cells=len(cells))

        # -- shard 1/2 runs to completion -----------------------------------
        say("section", "shard 1/2:")
        s1 = CampaignSession(base.with_(cache_dir=cache, shard=(1, 2))).run()
        own1 = set(shard_cells(cells, 1, 2))
        _check(say, set(s1.records) == own1,
               f"shard 1/2 ran exactly its {len(own1)} assigned cells", failures)
        _check(say, all(baseline.records[k] == r for k, r in s1.records.items()),
               "shard 1/2 records match the baseline", failures)

        # -- shard 2/2 is killed mid-run ------------------------------------
        say("section", "shard 2/2 (killed mid-run):")
        session = CampaignSession(base.with_(
            cache_dir=cache, shard=(2, 2)))
        finished = []

        @session.subscribe
        def kill(event):
            if event.kind is EventKind.CELL_FINISHED:
                finished.append(event)
                if len(finished) == KILL_AFTER:
                    raise _Killed()

        try:
            session.run()
            _check(say, False, "the kill handler fired", failures)
        except _Killed:
            say("killed", f"  killed after {KILL_AFTER} cells, as planned",
                killed_after=KILL_AFTER)

        store = DirectoryJournalStore(cache)
        merged = store.merge()
        own2 = set(shard_cells(cells, 2, 2))
        checkpointed = {k for k in merged.records if k in own2}
        _check(say, len(checkpointed) >= KILL_AFTER,
               f"journal kept every checkpointed cell "
               f"({len(checkpointed)} >= {KILL_AFTER})", failures)
        _check(say, not merged.complete and set(merged.missing) <= own2,
               f"merge reports the {len(merged.missing)} unfinished cells, "
               "all on the killed shard", failures)

        # -- resume the killed shard ----------------------------------------
        say("section", "resume shard 2/2:")
        s2 = CampaignSession(base.with_(
            cache_dir=cache, shard=(2, 2), resume=True)).run()
        _check(say, set(s2.records) == own2,
               f"resumed shard covers all {len(own2)} assigned cells", failures)
        _check(say, s2.meta.get("resumed", 0) >= KILL_AFTER,
               f"resume replayed the checkpointed cells "
               f"({s2.meta.get('resumed', 0)})", failures)
        _check(say, s2.meta.get("executed", 0) == len(own2) - s2.meta.get("resumed", 0),
               "resume executed only the remainder", failures)

        # -- merge and compare ----------------------------------------------
        say("section", "merge:")
        merged = store.merge()
        _check(say, merged is not None and merged.complete,
               "merged journals cover the full campaign", failures)
        full = merged_result(merged)
        _check(say, full.records == baseline.records
               and list(full.records) == list(baseline.records),
               "merged result is record-for-record identical to the "
               "unsharded baseline", failures)
        _check(say, _records_json(full) == _records_json(baseline),
               "merged records serialize byte-identically", failures)

        # -- any node resumes the whole sweep -------------------------------
        say("section", "unsharded resume from shard journals:")
        for p in (cache / "cells").glob("*.json"):
            p.unlink()  # only the journals can restore the records
        resumed = CampaignSession(base.with_(cache_dir=cache, resume=True)).run()
        _check(say, resumed.records == baseline.records,
               "unsharded resume reproduces the baseline", failures)
        _check(say, resumed.meta.get("executed", 1) == 0
               and resumed.meta.get("resumed", 0) == len(cells),
               f"unsharded resume replayed all {len(cells)} cells without "
               "executing any", failures)

        elapsed = time.monotonic() - t0
        report = {
            "cells": len(cells),
            "shards": 2,
            "killed_after": KILL_AFTER,
            "resumed": s2.meta.get("resumed"),
            "executed_after_kill": s2.meta.get("executed"),
            "elapsed_s": round(elapsed, 3),
            "broken": failures,
            "ok": not failures,
        }
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        say("report", f"report: {args.out}", path=args.out)
        if not args.cache_dir:
            shutil.rmtree(cache, ignore_errors=True)

        if failures:
            say("fail", f"{len(failures)} shard assertion(s) broken",
                level="error", broken=len(failures))
            return 1
        say("pass", "shard gate: merge and resume are loss-free "
            "and bit-identical")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
