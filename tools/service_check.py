#!/usr/bin/env python
"""Service gauntlet: the campaign service's multi-tenant contract.

Boots the real service (HTTP front end + shared scheduler + process
pool) and asserts the write-side contract end to end:

1. two tenants submit overlapping campaigns concurrently; every cell
   shared between them executes exactly once (cross-tenant dedupe:
   ``cells_executed`` counts unique cells, the waiters fan in and are
   counted ``deduped``);
2. the service's records are byte-identical to a one-shot CLI run of
   the same campaign (same engine, same caches, same fingerprints);
3. a campaign submitted against a warm cache finishes without the
   service ever creating a worker pool (zero pool workers, zero pool
   tasks);
4. killing the service mid-campaign and restarting it resumes the
   interrupted campaign from its journal (completed cells replay, the
   rest execute, the registry converges to ``finished``);
5. ``/metrics`` stays conformant Prometheus exposition with per-tenant
   gauges, and the structured log correlates events by campaign id and
   tenant.

Writes a JSON report (``--out``, default ``service-report.json``) and
exits non-zero on the first broken assertion.  CI runs this as the
``service-gauntlet`` job; run it locally after touching the service::

    python tools/service_check.py --out service-report.json
"""
from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro import telemetry  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.service import CampaignService  # noqa: E402
from repro.service.registry import ServiceRegistry  # noqa: E402
from repro.telemetry import StructuredLogger, validate_exposition  # noqa: E402

#: The overlapping tenant campaigns: both want ``symm`` on both
#: variants — those four cells are the cross-tenant dedupe surface.
VARIANTS = ["GNU", "FJtrad"]
ALICE = {"tenant": "alice", "variants": VARIANTS,
         "benchmarks": ["polybench.gemm", "polybench.symm"]}
BOB = {"tenant": "bob", "variants": VARIANTS,
       "benchmarks": ["polybench.symm", "polybench.gemver"]}
UNIQUE_CELLS = 3 * len(VARIANTS)      # gemm, symm, gemver x 2 variants
SHARED_CELLS = 1 * len(VARIANTS)      # symm x 2 variants

#: The kill/restart campaign: large enough that the kill lands mid-run.
RESUME_SPEC = {"tenant": "dave", "suites": ["polybench"]}


def _check(say, condition: bool, message: str, failures: list) -> None:
    if condition:
        say("check", f"  ok: {message}", ok=True)
    else:
        say("check", f"  BROKEN: {message}", level="error", ok=False)
        failures.append(message)


def _request(port: int, method: str, path: str, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        text = resp.read().decode()
        try:
            return resp.status, json.loads(text)
        except ValueError:
            return resp.status, text
    finally:
        conn.close()


def _wait_terminal(port: int, cid: str, timeout=300.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, doc = _request(port, "GET", f"/campaigns/{cid}")
        if doc["state"] in ("finished", "failed", "cancelled"):
            return doc
        time.sleep(0.05)
    raise TimeoutError(f"campaign {cid} did not settle in {timeout}s")


def _overlap_phase(say, failures, report, cache: Path) -> None:
    say("section", "overlapping tenants with cross-tenant dedupe:")
    service = CampaignService(cache, workers=2).start()
    try:
        _s, alice = _request(service.port, "POST", "/campaigns", ALICE)
        _s, bob = _request(service.port, "POST", "/campaigns", BOB)
        alice_doc = _wait_terminal(service.port, alice["id"])
        bob_doc = _wait_terminal(service.port, bob["id"])
        _s, stats = _request(service.port, "GET", "/stats")
        _s, metrics = _request(service.port, "GET", "/metrics")
        report["overlap"] = {"alice": alice_doc, "bob": bob_doc,
                             "stats": stats}

        _check(say, alice_doc["state"] == "finished"
               and bob_doc["state"] == "finished",
               "both tenants' campaigns finished", failures)
        _check(say, stats["cells_executed"] == UNIQUE_CELLS,
               f"{UNIQUE_CELLS} unique cells executed exactly once "
               f"(got {stats['cells_executed']})", failures)
        deduped = (alice_doc["stats"]["deduped"]
                   + bob_doc["stats"]["deduped"])
        _check(say, deduped == SHARED_CELLS,
               f"the {SHARED_CELLS} shared cells were deduped across "
               f"tenants (got {deduped})", failures)
        _check(say, stats["tenants"].get("alice", {}).get("campaigns") == 1
               and stats["tenants"].get("bob", {}).get("campaigns") == 1,
               "per-tenant gauges track both tenants", failures)
        problems = validate_exposition(metrics)
        _check(say, problems == [] and 'tenant="alice"' in metrics
               and 'tenant="bob"' in metrics,
               f"/metrics is conformant with per-tenant samples "
               f"({len(problems)} problem(s))", failures)

        # Byte-identity: a one-shot CLI run of alice's campaign against
        # a fresh cache must produce byte-identical records.
        say("section", "byte-identity vs the one-shot CLI:")
        cli_out = cache.parent / "cli-result.json"
        with tempfile.TemporaryDirectory(prefix="svc-cli-") as cli_cache:
            rc = cli_main([
                "run", "--out", str(cli_out), "--cache-dir", cli_cache,
                *[x for b in ALICE["benchmarks"]
                  for x in ("--benchmark", b)],
                *[x for v in VARIANTS for x in ("--variant", v)],
            ])
        _check(say, rc == 0, "one-shot CLI campaign ran", failures)
        _s, service_result = _request(
            service.port, "GET", f"/campaigns/{alice['id']}/result")
        cli_records = json.dumps(
            json.loads(cli_out.read_text())["records"], sort_keys=True)
        service_records = json.dumps(
            service_result["records"], sort_keys=True)
        _check(say, cli_records == service_records,
               "service records are byte-identical to the one-shot CLI",
               failures)
    finally:
        service.stop(graceful=True)


def _cached_phase(say, failures, report, cache: Path) -> None:
    say("section", "fully-cached campaign spawns zero workers:")
    service = CampaignService(cache, workers=2).start()
    try:
        union = {"tenant": "carol", "variants": VARIANTS,
                 "benchmarks": sorted({*ALICE["benchmarks"],
                                       *BOB["benchmarks"]})}
        _s, doc = _request(service.port, "POST", "/campaigns", union)
        final = _wait_terminal(service.port, doc["id"])
        _s, stats = _request(service.port, "GET", "/stats")
        report["cached"] = {"campaign": final, "stats": stats}
        _check(say, final["state"] == "finished",
               "warm-cache campaign finished", failures)
        _check(say, final["stats"]["cache_hits"] == final["total"],
               f"every cell came from the cell cache "
               f"({final['stats']['cache_hits']}/{final['total']})",
               failures)
        _check(say, stats["pool_created"] is False
               and stats["pool_tasks"] == 0,
               "no worker pool was ever created for the cached campaign",
               failures)
    finally:
        service.stop(graceful=True)


def _resume_phase(say, failures, report, cache: Path) -> None:
    say("section", "kill mid-campaign, restart, journal-backed resume:")
    service = CampaignService(cache, workers=2).start()
    killed_at = None
    cid = None
    try:
        for attempt in range(10):
            _s, doc = _request(service.port, "POST", "/campaigns",
                               {**RESUME_SPEC, "variants": VARIANTS})
            cid = doc["id"]
            total = doc["total"]
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                _s, live = _request(service.port, "GET", f"/campaigns/{cid}")
                if 0 < live["completed"] < total:
                    killed_at = live["completed"]
                    break
                if live["state"] != "running" or live["completed"] >= total:
                    break
                time.sleep(0.005)
            if killed_at is not None:
                break
            say("retry", f"  campaign finished before the kill landed "
                f"(attempt {attempt + 1}); resubmitting against a "
                f"bigger window", level="warning")
            RESUME_SPEC["suites"].append("micro")
        _check(say, killed_at is not None,
               "caught the campaign mid-flight to kill it", failures)
    finally:
        service.stop(graceful=False)  # the kill: no drain, no goodbye

    registry = ServiceRegistry(cache / "service" / "campaigns.json")
    state_after_kill = registry.load().get(cid, {}).get("state")
    _check(say, state_after_kill == "running",
           f"registry still says 'running' after the kill "
           f"(got {state_after_kill!r})", failures)

    restarted = CampaignService(cache, workers=2).start()
    try:
        resumed_ids = [c.id for c in restarted.scheduler.campaigns.values()]
        _check(say, cid in resumed_ids,
               "restart picked the interrupted campaign back up", failures)
        final = _wait_terminal(restarted.port, cid)
        report["resume"] = {"killed_at": killed_at, "final": final}
        _check(say, final["state"] == "finished"
               and final["completed"] == final["total"],
               f"resumed campaign finished all {final['total']} cells",
               failures)
        _check(say, final["stats"]["resumed"] >= killed_at,
               f"journal replayed the {killed_at} cells completed before "
               f"the kill (resumed={final['stats']['resumed']})", failures)
        _s, result = _request(restarted.port, "GET",
                              f"/campaigns/{cid}/result")
        _check(say, len(result["records"]) == final["total"],
               "the merged result covers the full grid", failures)
    finally:
        restarted.stop(graceful=True)


def _correlation_checks(say, failures, report, log_path: Path) -> None:
    say("section", "log correlation:")
    records = []
    try:
        with open(log_path) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    except OSError:
        pass
    correlated = [
        r for r in records
        if r.get("event", "").startswith("service.")
        and r.get("campaign") and r.get("tenant")
    ]
    tenants = {r["tenant"] for r in correlated}
    report["correlation"] = {"records": len(records),
                             "correlated": len(correlated),
                             "tenants": sorted(tenants)}
    _check(say, len(correlated) > 0,
           f"structured log carries campaign/tenant-correlated service "
           f"events ({len(correlated)} of {len(records)})", failures)
    _check(say, {"alice", "bob", "dave"} <= tenants,
           f"events from every tenant are correlated (got "
           f"{sorted(tenants)})", failures)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="service-report.json",
                        help="report path")
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "service_check") as say:
        failures: list[str] = []
        report: dict = {}
        t0 = time.monotonic()
        with tempfile.TemporaryDirectory(prefix="service-check-") as td:
            cache = Path(td) / "cache"
            resume_cache = Path(td) / "resume-cache"
            service_log = Path(td) / "service-log.jsonl"
            logger = StructuredLogger(service_log)
            with telemetry.logging_active(logger):
                _overlap_phase(say, failures, report, cache)
                _cached_phase(say, failures, report, cache)
                _resume_phase(say, failures, report, resume_cache)
            logger.close()
            _correlation_checks(say, failures, report, service_log)

        report["elapsed_s"] = round(time.monotonic() - t0, 2)
        report["ok"] = not failures
        report["broken"] = failures
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        say("wrote", f"wrote {args.out}", path=args.out)
        if failures:
            say("fail", f"service gauntlet: {len(failures)} broken "
                f"assertion(s)", level="error")
            return 1
        say("pass", "service gauntlet: the multi-tenant write-side "
            "contract holds")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
