#!/usr/bin/env python
"""Run every tools/ gate in one process and merge their reports.

CI used to give each gate script — bench_guard, chaos_check,
shard_check, obs_check, lint_gate — its own job with its own checkout,
install, and artifact step.  This runner consolidates them: each gate's
``main(argv)`` is invoked in-process with a per-gate report path under
one output directory and a single shared ``--log-json`` stream, every
gate runs even when an earlier one fails, and the merged verdict lands
in ``<out-dir>/gauntlet-report.json`` (one artifact upload instead of
five).

The service gauntlet (``service_check``) is registered but not in the
default set — CI runs it as its own job because it exercises a live
process pool; include it explicitly with ``--gate service``.

Usage::

    python tools/ci_gauntlet.py                      # all default gates
    python tools/ci_gauntlet.py --gate chaos --gate shard
    python tools/ci_gauntlet.py --out-dir gauntlet --log-json g.jsonl
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from toollog import add_logging_args, tool_logging  # noqa: E402


def _gate_argv(out_dir: Path, name: str) -> "tuple[str, list[str]]":
    """Map a gate name to (module, argv).  Paths are gate-specific:
    lint_gate emits SARIF rather than a JSON report, bench_guard needs
    the committed baseline."""
    report = str(out_dir / f"{name}-report.json")
    return {
        "bench": ("bench_guard", [
            "--baseline", str(ROOT / "benchmarks/BENCH_engine.baseline.json"),
            "--out", report,
        ]),
        "chaos": ("chaos_check", ["--out", report]),
        "shard": ("shard_check", ["--out", report]),
        "obs": ("obs_check", ["--out", report]),
        "tuner": ("tuner_check", ["--out", report]),
        "lint": ("lint_gate", ["--sarif", str(out_dir / "lint.sarif")]),
        "service": ("service_check", ["--out", report]),
    }[name]


DEFAULT_GATES = ("bench", "chaos", "shard", "obs", "tuner", "lint")
ALL_GATES = DEFAULT_GATES + ("service",)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate", action="append", choices=ALL_GATES, default=None,
        help="run only the named gate(s); repeatable "
             f"(default: {', '.join(DEFAULT_GATES)})",
    )
    parser.add_argument("--out-dir", default="gauntlet",
                        help="directory for per-gate reports and the "
                             "merged gauntlet-report.json")
    add_logging_args(parser)
    args = parser.parse_args(argv)

    gates = tuple(args.gate) if args.gate else DEFAULT_GATES
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.log_json is None:
        args.log_json = str(out_dir / "gauntlet-log.jsonl")

    with tool_logging(args, "ci_gauntlet") as say:
        merged: dict = {"gates": {}, "ok": True}
        for name in gates:
            module_name, gate_args = _gate_argv(out_dir, name)
            # Every gate logs into the same JSONL stream, correlated
            # by its own tool name.
            gate_args += ["--log-json", args.log_json]
            if args.quiet:
                gate_args += ["--quiet"]
            say("gate", f"=== {name} ({module_name}) ===")
            module = __import__(module_name)
            t0 = time.monotonic()
            try:
                rc = module.main(gate_args)
            except SystemExit as exc:  # argparse error paths
                rc = int(exc.code or 0)
            except Exception as exc:
                say("crash", f"{name} crashed: {exc!r}", level="error")
                rc = 70
            elapsed = round(time.monotonic() - t0, 2)

            report_path = out_dir / f"{name}-report.json"
            gate_report = None
            if report_path.exists():
                try:
                    gate_report = json.loads(report_path.read_text())
                except ValueError:
                    pass
            merged["gates"][name] = {
                "module": module_name, "rc": rc, "elapsed_s": elapsed,
                "ok": rc == 0, "report": gate_report,
            }
            merged["ok"] = merged["ok"] and rc == 0
            say("gate_done", f"=== {name}: "
                f"{'ok' if rc == 0 else f'FAILED (rc={rc})'} "
                f"in {elapsed}s ===",
                level="info" if rc == 0 else "error",
                gate=name, rc=rc, elapsed_s=elapsed)

        merged_path = out_dir / "gauntlet-report.json"
        merged_path.write_text(json.dumps(merged, indent=2) + "\n")
        say("wrote", f"wrote {merged_path}", path=str(merged_path))

        broken = [n for n, g in merged["gates"].items() if not g["ok"]]
        if broken:
            say("fail", f"gauntlet: {len(broken)} gate(s) failed: "
                f"{', '.join(broken)}", level="error")
            return 1
        say("pass", f"gauntlet: all {len(gates)} gate(s) passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
