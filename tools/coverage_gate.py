#!/usr/bin/env python
"""Ratchet-style coverage gate over a Cobertura ``coverage.xml``.

CI runs ``pytest --cov=repro --cov-report=xml`` and hands the XML to
this gate, which compares the measured line rate against the committed
floor in ``coverage-baseline.json``.  The floor only moves up: when the
measured rate clears the floor by more than the ratchet slack, the gate
still passes but tells you to ratchet — run with ``--update`` to pin
the new floor (measured rate minus the slack, so run-to-run jitter
doesn't flap the gate).

The gate itself needs only the stdlib: it parses the XML with
``xml.etree``, so it runs anywhere — producing the XML normally needs
pytest-cov, but ``tools/coverage_measure.py`` can produce it with the
stdlib alone (a self-retiring ``sys.settrace`` tracer).

Usage::

    python tools/coverage_gate.py --xml coverage.xml
    python tools/coverage_gate.py --xml coverage.xml --update
"""
from __future__ import annotations

import argparse
import json
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

BASELINE = ROOT / "coverage-baseline.json"

#: Headroom kept between the measured rate and a ratcheted floor, in
#: percentage points — absorbs run-to-run jitter and the skew between
#: coverage.py and other line-accounting methods.
RATCHET_SLACK_PCT = 4.0


def read_line_rate(xml_path: Path) -> "tuple[float, int, int]":
    """Return (line_rate_pct, lines_covered, lines_valid) from a
    Cobertura report.  Prefers the explicit counters; falls back to the
    root ``line-rate`` attribute."""
    root = ET.parse(xml_path).getroot()
    covered = root.get("lines-covered")
    valid = root.get("lines-valid")
    if covered is not None and valid is not None and int(valid) > 0:
        return 100.0 * int(covered) / int(valid), int(covered), int(valid)
    rate = root.get("line-rate")
    if rate is None:
        raise ValueError(f"{xml_path} has neither lines-covered/lines-valid "
                         f"nor line-rate — not a Cobertura report?")
    return 100.0 * float(rate), 0, 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--xml", default="coverage.xml",
                        help="Cobertura XML produced by pytest-cov")
    parser.add_argument("--baseline", default=str(BASELINE),
                        help="committed floor (JSON)")
    parser.add_argument("--update", action="store_true",
                        help="ratchet the floor up to the measured rate "
                             f"minus {RATCHET_SLACK_PCT} points")
    parser.add_argument("--out", default=None,
                        help="optional JSON report path")
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "coverage_gate") as say:
        xml_path = Path(args.xml)
        if not xml_path.exists():
            say("missing", f"no coverage XML at {xml_path} — run pytest "
                f"with --cov=repro --cov-report=xml first", level="error")
            return 2
        baseline_path = Path(args.baseline)
        baseline = json.loads(baseline_path.read_text())
        floor = float(baseline["line_rate_min_pct"])

        rate, covered, valid = read_line_rate(xml_path)
        say("measure", f"measured line rate: {rate:.2f}% "
            f"({covered}/{valid} lines); committed floor: {floor:.2f}%",
            rate_pct=round(rate, 2), floor_pct=floor)

        report = {"line_rate_pct": round(rate, 2),
                  "lines_covered": covered, "lines_valid": valid,
                  "floor_pct": floor, "ok": rate >= floor}
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

        if rate < floor:
            say("fail", f"coverage regressed below the floor: {rate:.2f}% "
                f"< {floor:.2f}%", level="error")
            return 1

        ratchet_target = round(rate - RATCHET_SLACK_PCT, 2)
        if args.update and ratchet_target > floor:
            baseline["line_rate_min_pct"] = ratchet_target
            baseline_path.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n")
            say("ratchet", f"floor ratcheted {floor:.2f}% -> "
                f"{ratchet_target:.2f}% in {baseline_path}")
        elif ratchet_target > floor:
            say("slack", f"measured rate clears the floor by "
                f"{rate - floor:.2f} points — consider --update to pin "
                f"the floor at {ratchet_target:.2f}%", level="warning")

        say("pass", f"coverage gate: {rate:.2f}% >= {floor:.2f}%")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
