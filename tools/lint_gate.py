#!/usr/bin/env python
"""Baseline-ratcheted lint gate for CI.

Runs the static analyzer over every suite, diffs the findings against
the committed ``lint-baseline.json``, and fails only on findings the
baseline does not know.  The corpus's *accepted* findings (the paper's
kernels genuinely leave interchange on the table — that is the study)
stay green; a kernel edit that introduces a new race, bounds error, or
divergence turns the gate red immediately.

Checks:

- *gate*: no finding outside the baseline (identity = content hash of
  the canonical diagnostic, so a changed message is a new finding);
- *staleness report*: baseline entries whose finding no longer fires
  are listed — ratchet the baseline tighter with ``--update``;
- *self-validation*: the SARIF document written with ``--sarif`` must
  pass :func:`repro.staticanalysis.validate_sarif`.

Refresh the baseline after intentionally accepting new findings::

    python tools/lint_gate.py --update
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

from repro.machine import a64fx  # noqa: E402
from repro.staticanalysis import (  # noqa: E402
    AnalysisContext,
    Baseline,
    analyze_benchmark,
    to_sarif,
    validate_sarif,
)
from repro.suites import all_suites  # noqa: E402

BASELINE_PATH = ROOT / "lint-baseline.json"


def collect_findings():
    """All findings over every suite, plus the kernels they point at."""
    ctx = AnalysisContext(machine=a64fx())
    findings = []
    kernels = []
    seen = set()
    for suite in all_suites():
        for bench in suite.benchmarks:
            findings.extend(analyze_benchmark(bench, ctx=ctx))
            for kernel in bench.kernels():
                if id(kernel) not in seen:
                    seen.add(id(kernel))
                    kernels.append(kernel)
    return findings, kernels


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", metavar="PATH", type=Path, default=BASELINE_PATH,
        help=f"baseline file to diff against (default: {BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the baseline from the current findings "
             "(accepting them) instead of gating",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", type=Path, default=None,
        help="also write the findings as SARIF 2.1.0 here (for upload)",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "lint_gate") as say:
        findings, kernels = collect_findings()
        say("analyzed", f"lint: {len(findings)} finding(s) across "
            f"{len(kernels)} kernels", findings=len(findings),
            kernels=len(kernels))

        if args.sarif:
            doc = to_sarif(findings, kernels=kernels)
            problems = validate_sarif(doc)
            if problems:
                for problem in problems:
                    say("sarif_invalid", f"SARIF: {problem}", level="error")
                return 2
            args.sarif.write_text(json.dumps(doc, indent=2) + "\n")
            say("sarif", f"SARIF written to {args.sarif}",
                path=str(args.sarif))

        if args.update:
            Baseline.from_findings(findings).write(args.baseline)
            say("updated", f"baseline regenerated: {args.baseline} "
                f"({len(findings)} finding(s))", path=str(args.baseline))
            return 0

        diff = Baseline.load(args.baseline).diff(findings)
        say("diff", f"baseline diff: {diff.summary()}",
            new=len(diff.new), matched=len(diff.matched),
            stale=len(diff.stale))
        for ident in diff.stale:
            say("stale", f"stale baseline entry {ident} — ratchet with "
                "--update", level="warning", identity=ident)
        for diag in diff.new:
            say("new_finding", f"NEW {diag}", level="error",
                rule=diag.rule_id, location=diag.location)
        if not diff.ok:
            say("fail", f"lint gate: {len(diff.new)} finding(s) not in "
                "the baseline", level="error")
            return 1
        say("pass", "lint gate: no new findings")
        return 0


if __name__ == "__main__":
    sys.exit(main())
