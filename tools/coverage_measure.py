#!/usr/bin/env python
"""Stdlib line-coverage measurement: pytest under ``sys.settrace``.

CI measures coverage with ``pytest --cov=repro --cov-report=xml``; this
tool is the fallback for environments without pytest-cov.  It runs the
test suite in-process under a self-retiring line tracer and writes a
minimal Cobertura XML that ``tools/coverage_gate.py`` accepts:

* **valid lines** come from compiling every ``src/repro`` file and
  walking the code objects' ``co_lines()`` tables — the interpreter's
  own notion of executable lines;
* **covered lines** are recorded by a trace function that retires
  itself per code object: once every line of a function has been seen,
  its frames stop being traced, so the hot paths that dominate the
  suite's runtime quickly run at full speed again;
* *subprocesses* the suite spawns (example scripts, CLI integration
  tests) are traced too, via an env-activated ``sitecustomize``
  bootstrap that installs the same tracer in every child interpreter
  and dumps its covered lines for the parent to merge — the stdlib
  version of pytest-cov's ``.pth`` hook.  Only pool workers *forked*
  from an already-running interpreter escape (they exit without
  ``atexit``), so the measured rate still reads slightly low — the
  gate's ``RATCHET_SLACK_PCT`` exists to absorb exactly this kind of
  accounting skew.

Usage::

    python tools/coverage_measure.py --xml coverage.xml
    python tools/coverage_gate.py --xml coverage.xml --update
"""
from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from xml.sax.saxutils import quoteattr

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(ROOT / "tools"))

from toollog import add_logging_args, tool_logging  # noqa: E402

SRC = ROOT / "src" / "repro"


def _code_lines(code) -> "set[int]":
    """Every line number the code object (and its nested code objects)
    can execute, from the interpreter's own line table."""
    lines = {line for _, _, line in code.co_lines() if line is not None}
    for const in code.co_consts:
        if hasattr(const, "co_lines"):
            lines |= _code_lines(const)
    return lines


def valid_lines() -> "dict[str, set[int]]":
    """Executable lines per file for the whole ``src/repro`` tree —
    including files the suite never imports."""
    out: dict[str, set[int]] = {}
    for path in sorted(SRC.rglob("*.py")):
        code = compile(path.read_text(), str(path), "exec")
        out[str(path)] = _code_lines(code)
    return out


class LineTracer:
    """A ``sys.settrace`` tracer that retires fully-covered functions.

    The global trace declines every frame whose file is outside the
    measured tree or whose code object is already fully covered; the
    local trace discards seen lines from the code object's pending set
    and stops tracing the frame once nothing is pending.
    """

    def __init__(self, prefix: str):
        self._prefix = prefix
        self.covered: dict[str, set[int]] = {}
        self._pending: dict = {}
        self._done: set = set()

    def _local(self, frame, event, arg):
        if event == "line":
            code = frame.f_code
            pending = self._pending.get(code)
            if pending is None:
                pending = self._pending[code] = {
                    line for _, _, line in code.co_lines() if line is not None
                }
                self.covered.setdefault(code.co_filename, set())
            pending.discard(frame.f_lineno)
            self.covered[code.co_filename].add(frame.f_lineno)
            if not pending:
                self._done.add(code)
                return None
        return self._local

    def __call__(self, frame, event, arg):
        if event != "call":
            return None
        code = frame.f_code
        if code in self._done or not code.co_filename.startswith(self._prefix):
            return None
        return self._local

    def install(self) -> None:
        threading.settrace(self)
        sys.settrace(self)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


#: Bootstrap written to a temp dir that is prepended to ``PYTHONPATH``:
#: every child interpreter imports ``sitecustomize`` at startup, traces
#: itself with the same self-retiring tracer, and dumps its covered
#: lines on exit for the parent to merge.
_SITECUSTOMIZE = '''\
import atexit, json, os, sys, threading, uuid

_dir = os.environ.get("COVERAGE_MEASURE_DIR")
_prefix = os.environ.get("COVERAGE_MEASURE_PREFIX")
if _dir and _prefix:
    _covered, _pending, _done = {}, {}, set()

    def _local(frame, event, arg):
        if event == "line":
            code = frame.f_code
            pending = _pending.get(code)
            if pending is None:
                pending = _pending[code] = {
                    line for _, _, line in code.co_lines() if line is not None
                }
                _covered.setdefault(code.co_filename, set())
            pending.discard(frame.f_lineno)
            _covered[code.co_filename].add(frame.f_lineno)
            if not pending:
                _done.add(code)
                return None
        return _local

    def _global(frame, event, arg):
        if event != "call":
            return None
        code = frame.f_code
        if code in _done or not code.co_filename.startswith(_prefix):
            return None
        return _local

    def _dump():
        sys.settrace(None)
        path = os.path.join(
            _dir, "sub-%s-%s.json" % (os.getpid(), uuid.uuid4().hex[:8])
        )
        try:
            with open(path, "w") as handle:
                json.dump(
                    {f: sorted(lines) for f, lines in _covered.items()}, handle
                )
        except OSError:
            pass

    threading.settrace(_global)
    sys.settrace(_global)
    atexit.register(_dump)
'''


def merge_subprocess_dumps(
    dump_dir: Path, covered: "dict[str, set[int]]"
) -> int:
    """Fold every child interpreter's dump into ``covered``."""
    dumps = 0
    for path in sorted(dump_dir.glob("sub-*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        dumps += 1
        for filename, lines in doc.items():
            covered.setdefault(filename, set()).update(lines)
    return dumps


def write_cobertura(
    xml_path: Path, valid: "dict[str, set[int]]",
    covered: "dict[str, set[int]]",
) -> "tuple[int, int]":
    """A minimal Cobertura document: root counters plus one class per
    file (enough for coverage_gate and for a human diffing two runs)."""
    total_valid = sum(len(lines) for lines in valid.values())
    total_covered = sum(
        len(covered.get(path, set()) & lines) for path, lines in valid.items()
    )
    rate = total_covered / total_valid if total_valid else 0.0
    rows = []
    for path, lines in sorted(valid.items()):
        hit = len(covered.get(path, set()) & lines)
        file_rate = hit / len(lines) if lines else 1.0
        rel = Path(path).relative_to(ROOT)
        rows.append(
            f'      <class name={quoteattr(rel.stem)} '
            f'filename={quoteattr(str(rel))} '
            f'line-rate="{file_rate:.4f}" '
            f'lines-covered="{hit}" lines-valid="{len(lines)}"/>'
        )
    body = "\n".join(rows)
    xml_path.write_text(
        f'<?xml version="1.0" ?>\n'
        f'<coverage line-rate="{rate:.4f}" lines-covered="{total_covered}" '
        f'lines-valid="{total_valid}" version="repro-stdlib-trace" '
        f'timestamp="0">\n'
        f'  <packages>\n'
        f'    <package name="repro" line-rate="{rate:.4f}">\n'
        f"{body}\n"
        f"    </package>\n"
        f"  </packages>\n"
        f"</coverage>\n"
    )
    return total_covered, total_valid


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--xml", default="coverage.xml",
                        help="Cobertura XML output path")
    parser.add_argument(
        "--pytest-arg", action="append", default=None, metavar="ARG",
        help="extra pytest argument (repeatable; default: just -q)",
    )
    add_logging_args(parser)
    args = parser.parse_args(argv)

    with tool_logging(args, "coverage_measure") as say:
        import pytest

        say("start", f"measuring {SRC} under the stdlib line tracer "
            "(slower than a plain run; the tracer retires itself as "
            "functions reach full coverage)")
        dump_dir = Path(tempfile.mkdtemp(prefix="covmeasure-"))
        boot = dump_dir / "boot"
        boot.mkdir()
        (boot / "sitecustomize.py").write_text(_SITECUSTOMIZE)
        saved_env = {
            key: os.environ.get(key)
            for key in ("COVERAGE_MEASURE_DIR", "COVERAGE_MEASURE_PREFIX",
                        "PYTHONPATH")
        }
        os.environ["COVERAGE_MEASURE_DIR"] = str(dump_dir)
        os.environ["COVERAGE_MEASURE_PREFIX"] = str(SRC)
        os.environ["PYTHONPATH"] = os.pathsep.join(
            [str(boot), str(ROOT / "src")]
            + ([saved_env["PYTHONPATH"]] if saved_env["PYTHONPATH"] else [])
        )

        tracer = LineTracer(str(SRC))
        t0 = time.monotonic()
        tracer.install()
        try:
            rc = pytest.main(["-q"] + (args.pytest_arg or []))
        finally:
            tracer.uninstall()
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        elapsed = time.monotonic() - t0
        if rc != 0:
            shutil.rmtree(dump_dir, ignore_errors=True)
            say("fail", f"pytest failed (rc={rc}) — refusing to write "
                "coverage for a broken suite", level="error")
            return int(rc)

        dumps = merge_subprocess_dumps(dump_dir, tracer.covered)
        shutil.rmtree(dump_dir, ignore_errors=True)
        say("subprocesses", f"merged {dumps} traced subprocess dump(s)",
            dumps=dumps)
        covered, valid = write_cobertura(
            Path(args.xml), valid_lines(), tracer.covered
        )
        pct = 100.0 * covered / valid if valid else 0.0
        say("measured", f"{pct:.2f}% ({covered}/{valid} lines) in "
            f"{elapsed:.0f}s -> {args.xml}",
            rate_pct=round(pct, 2), covered=covered, valid=valid,
            elapsed_s=round(elapsed, 1))
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
